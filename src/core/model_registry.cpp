#include "core/model_registry.hpp"

#include "util/expect.hpp"

namespace seo {

ModelRegistry::ModelRegistry(std::vector<PipelineConfig> pipelines,
                             const TimeBase& time)
    : pipelines_(std::move(pipelines)) {
  SEO_EXPECT(!pipelines_.empty());
  deltas_.reserve(pipelines_.size());
  for (std::size_t i = 0; i < pipelines_.size(); ++i) {
    const auto& p = pipelines_[i];
    SEO_EXPECT(!p.name.empty());
    SEO_EXPECT(p.sensor.period_s > 0.0);
    // Schedulability: the model must fit its own sensor period, otherwise
    // even full-capacity operation misses frames.
    SEO_EXPECT(p.model.latency_s <= p.sensor.period_s);
    deltas_.push_back(time.discretize_period(p.sensor.period_s));
    if (p.criticality == Criticality::kOptimizable)
      optimizable_.push_back(i);
    else
      critical_.push_back(i);
  }
}

const PipelineConfig& ModelRegistry::at(std::size_t i) const {
  SEO_EXPECT(i < pipelines_.size());
  return pipelines_[i];
}

int ModelRegistry::delta(std::size_t i) const {
  SEO_EXPECT(i < deltas_.size());
  return deltas_[i];
}

std::vector<int> ModelRegistry::optimizable_deltas() const {
  std::vector<int> out;
  out.reserve(optimizable_.size());
  for (const auto i : optimizable_) out.push_back(deltas_[i]);
  return out;
}

}  // namespace seo
