// The model-set partition of the paper's section III-C / IV-A: the set
// Lambda of sensory processing pipelines is split into the critical subset
// Lambda'' (feeds the safety filter's state estimate; always full power)
// and the optimizable subset Lambda' (eligible for energy optimizations
// under the safety deadline).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/timebase.hpp"
#include "sensors/sensor_spec.hpp"

namespace seo {

enum class Criticality {
  kCritical,     ///< Lambda'': safety-state estimation; never optimized
  kOptimizable,  ///< Lambda': optimizations regulated by the deadline
};

/// One sensory processing pipeline N_i: a sensor and its perception model.
struct PipelineConfig {
  std::string name;
  SensorSpec sensor;
  PerceptionModelSpec model;
  Criticality criticality = Criticality::kOptimizable;
};

/// Validated registry of all pipelines with their discretized periods.
class ModelRegistry {
 public:
  ModelRegistry(std::vector<PipelineConfig> pipelines, const TimeBase& time);

  const std::vector<PipelineConfig>& pipelines() const { return pipelines_; }
  std::size_t size() const { return pipelines_.size(); }
  const PipelineConfig& at(std::size_t i) const;

  /// Indices of the optimizable subset Lambda' (order preserved).
  const std::vector<std::size_t>& optimizable() const { return optimizable_; }
  /// Indices of the critical subset Lambda''.
  const std::vector<std::size_t>& critical() const { return critical_; }

  /// delta_i (eq. 4) for pipeline `i`.
  int delta(std::size_t i) const;
  /// delta_i for each optimizable pipeline, in optimizable() order.
  std::vector<int> optimizable_deltas() const;

 private:
  std::vector<PipelineConfig> pipelines_;
  std::vector<int> deltas_;
  std::vector<std::size_t> optimizable_;
  std::vector<std::size_t> critical_;
};

}  // namespace seo
