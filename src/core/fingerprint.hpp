// Canonical content fingerprinting — the identity function behind every
// content-addressed artifact in the library (today: the DeadlineTable
// cache, safety/table_cache.hpp).
//
// Design constraints, in order:
//
//  1. Canonical: the digest is a pure function of the mixed values and the
//     order they are mixed in — no padding, pointers, locale or platform
//     state.  Two processes (or two machines with the same endianness of
//     double bit patterns, i.e. all supported targets) that mix the same
//     logical key produce the same digest, so on-disk artifacts are
//     shareable across runs and hosts.
//  2. Bit-exact on doubles: floating-point fields are mixed as their IEEE
//     bit patterns, never through decimal formatting.  Configs that differ
//     in the last ulp are different keys — the config-dependency trap of
//     "close enough" cache keys is exactly what this module exists to
//     avoid.
//  3. Self-delimiting: variable-length fields (strings) mix their length
//     first, so concatenation ambiguities ("ab"+"c" vs "a"+"bc") cannot
//     alias.
//
// The hash is FNV-1a over little-endian byte sequences, 64-bit.  It is a
// content identity, not a cryptographic commitment; collision resistance
// is the 2^-64 birthday kind, and callers that cannot tolerate silent
// aliasing (the table cache) additionally store and compare the full key.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace seo {

/// Incremental canonical hasher.  Mix fields in a fixed, documented order;
/// read the digest at the end.  Copyable value type.
class FingerprintHasher {
 public:
  void mix_bytes(const void* data, std::size_t size);

  void mix(std::uint64_t v);
  void mix(std::int64_t v) { mix(static_cast<std::uint64_t>(v)); }
  void mix(int v) { mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(v))); }
  void mix(bool v) { mix(static_cast<std::uint64_t>(v ? 1 : 0)); }
  /// IEEE-754 bit pattern; -0.0 and 0.0 are distinct keys by design (they
  /// are distinct configs even if numerically equal).
  void mix(double v);
  /// Length-prefixed, so adjacent strings cannot alias.
  void mix(std::string_view s);

  std::uint64_t digest() const { return state_; }
  /// Fixed-width lowercase hex of digest() — 16 characters, suitable for
  /// file names and log lines.
  std::string hex() const;

 private:
  // FNV-1a 64-bit offset basis.
  std::uint64_t state_ = 14695981039346656037ull;
};

/// Renders any 64-bit digest as fixed-width lowercase hex.
std::string fingerprint_hex(std::uint64_t digest);

}  // namespace seo
