// The SEO runtime scheduler — Algorithm 1 of the paper together with the
// safety-aware optimized model schedule of eq. (6).
//
// Operation: time advances in base periods (ticks).  At the start of every
// optimization interval a fresh safety deadline Delta_max is sampled from
// the lookup table, discretized to delta_max (eq. 5) and clamped to
// [1, cap].  Within the interval, every optimizable pipeline N_i with
// delta_i < delta_max has its frames classified as:
//
//   * optimization slots (Omega may be applied: gate or offload) for frame
//     ticks strictly before its deadline slot,
//   * the deadline slot at n = delta_i * floor((delta_max - delta_i) /
//     delta_i) — the last own-period frame that still completes by
//     delta_max — where the full model N_i must be invoked,
//   * post-done frames (natural-schedule local runs after the deadline
//     slot while other pipelines finish their intervals).
//
// Pipelines with delta_i >= delta_max get no optimization slots at all
// (eq. 6's else-branch) and run at their natural schedule.  When every
// pipeline has produced its mandatory output (all done_i true, Algorithm 1
// lines 22-23), the interval ends and a new Delta_max is sampled at the
// next tick.
//
// Deviations from the paper's pseudocode (under-specifications repaired;
// see DESIGN.md section 3): natural-schedule invocation for
// delta_i >= delta_max, interval length = max_i(deadline slot) + 1, and
// delta_max = 0 clamped to 1.
//
// The scheduler is deliberately *pure* scheduling logic — no world, no
// energy, no radio — so its invariants are directly unit-testable.  The
// strategy layer (gating/offloading) maps slot kinds to outcomes.
#pragma once

#include <functional>
#include <vector>

#include "core/timebase.hpp"
#include "util/expect.hpp"

namespace seo {

/// How the deadline provider answered at an interval start.
struct DeadlineSample {
  /// False when no obstacle is in sensing range: the formal deadline is
  /// vacuous.  The scheduler then uses the cap as a refresh period and
  /// marks the interval unconstrained (strategies may exploit this — see
  /// OffloadPlanner).
  bool constrained = false;
  double delta_max_s = 0.0;  ///< continuous Delta_max (when constrained)
};

/// Classification of one pipeline at one tick.
enum class SlotKind {
  kNoFrame,        ///< no sensor frame for this pipeline at this tick
  kMandatoryLocal, ///< delta_i >= delta_max: full model, natural schedule
  kOptSlot,        ///< optimization slot: Omega may replace the model
  kDeadlineSlot,   ///< the eq.-(6) invocation meeting the safety deadline
  kPostDoneLocal,  ///< natural-schedule local run after this pipeline's done
};

class SeoScheduler {
 public:
  struct Config {
    int deadline_cap = 4;  ///< delta_max clamp (paper's observed domain 1..4)
  };

  /// `deltas`: discretized period delta_i per optimizable pipeline.
  SeoScheduler(Config config, TimeBase time, std::vector<int> deltas);

  /// Everything a strategy needs to act on one tick.
  struct Tick {
    bool interval_started = false; ///< a new Delta_max was sampled this tick
    bool unconstrained = false;    ///< current interval is unconstrained
    int delta_max = 0;             ///< current discretized deadline (1..cap)
    int interval_tick = 0;         ///< n within the current interval
    std::vector<SlotKind> slots;   ///< per optimizable pipeline
  };

  /// Advances one base period.  `sample` is invoked only when a new
  /// interval starts (Algorithm 1's lookup-table probe on new-Delta).
  Tick tick(const std::function<DeadlineSample()>& sample);

  /// `tick` into a caller-owned result: the slots vector is overwritten in
  /// place, so a reused Tick makes the per-period path allocation-free.
  void tick_into(const std::function<DeadlineSample()>& sample, Tick& out);

  std::size_t pipeline_count() const { return deltas_.size(); }
  int delta(std::size_t i) const { return deltas_[i]; }
  const Config& config() const { return config_; }
  const TimeBase& time() const { return time_; }

  /// Deadline slot for pipeline period `delta_i` under deadline
  /// `delta_max` (exposed for tests/analytics): the last multiple of
  /// delta_i that is <= delta_max - delta_i, or -1 when delta_i >=
  /// delta_max (no optimization authorized).
  static int deadline_slot(int delta_i, int delta_max);

 private:
  void start_interval(const DeadlineSample& sample);

  Config config_;
  TimeBase time_;
  std::vector<int> deltas_;

  // Interval state.
  bool need_new_interval_ = true;
  bool unconstrained_ = false;
  int delta_max_ = 0;
  int n_ = 0;  ///< tick within interval
  std::vector<int> deadline_slots_;  ///< per pipeline; -1 = mandatory mode
  std::vector<bool> done_;
};

}  // namespace seo
