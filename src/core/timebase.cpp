#include "core/timebase.hpp"

#include <cmath>

#include "util/expect.hpp"

namespace seo {

namespace {
constexpr double kDivisibleTolerance = 1e-9;
}

TimeBase::TimeBase(double tau_s) : tau_s_(tau_s) { SEO_EXPECT(tau_s > 0.0); }

int TimeBase::discretize_period(double period_s) const {
  SEO_EXPECT(period_s > 0.0);
  const double ratio = period_s / tau_s_;
  const double rounded = std::round(ratio);
  if (std::abs(ratio - rounded) < kDivisibleTolerance * std::max(1.0, ratio))
    return static_cast<int>(rounded);  // (p_i % tau) == 0 branch
  return static_cast<int>(std::floor(ratio)) + 1;
}

int TimeBase::discretize_deadline(double delta_max_s) const {
  SEO_EXPECT(delta_max_s >= 0.0);
  return static_cast<int>(std::floor(delta_max_s / tau_s_));
}

}  // namespace seo
