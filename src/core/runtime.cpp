#include "core/runtime.hpp"

#include "util/expect.hpp"

namespace seo {

SeoRuntime::SeoRuntime(Config config,
                       std::unique_ptr<OptimizationStrategy> strategy,
                       Hooks hooks)
    : scheduler_(SeoScheduler::Config{config.deadline_cap}, config.time,
                 config.deltas),
      strategy_(std::move(strategy)),
      hooks_(std::move(hooks)) {
  SEO_EXPECT(strategy_ != nullptr);
  SEO_EXPECT(static_cast<bool>(hooks_.sample_deadline));
  offload_feasible_.assign(scheduler_.pipeline_count(), false);
  tallies_.assign(scheduler_.pipeline_count(),
                  PipelineTally(config.deadline_cap));
  remote_applied_.assign(scheduler_.pipeline_count(), 0);
  fallbacks_.assign(scheduler_.pipeline_count(), 0);
}

SeoRuntime::Directive SeoRuntime::classify(std::size_t pipeline,
                                           SlotKind kind,
                                           const SeoScheduler::Tick& tick) {
  Directive directive;
  directive.pipeline = pipeline;
  directive.bucket =
      tick.unconstrained ? kUnconstrainedBucket : tick.delta_max;

  FrameContext context;
  context.kind = kind;
  context.unconstrained = tick.unconstrained;
  context.delta_max = tick.delta_max;
  context.delta_i = scheduler_.delta(pipeline);
  context.offload_feasible = offload_feasible_[pipeline];
  context.remote_fresh =
      hooks_.remote_fresh ? hooks_.remote_fresh(pipeline) : false;

  switch (kind) {
    case SlotKind::kMandatoryLocal:
    case SlotKind::kPostDoneLocal:
      directive.action = FrameAction::kRunLocal;
      directive.outcome = SlotOutcome::kLocalScheduled;
      break;

    case SlotKind::kOptSlot: {
      directive.action = strategy_->opt_slot(context);
      switch (directive.action) {
        case FrameAction::kRunLocal:
          directive.outcome = SlotOutcome::kLocalScheduled;
          break;
        case FrameAction::kGate:
          directive.outcome = SlotOutcome::kGated;
          break;
        case FrameAction::kRunScaled:
          directive.outcome = SlotOutcome::kScaledLocal;
          break;
        case FrameAction::kOffload:
          directive.outcome = SlotOutcome::kOffloadTx;
          break;
        case FrameAction::kApplyRemote:
          SEO_ASSERT(false);  // not a legal opt-slot action
          break;
      }
      break;
    }

    case SlotKind::kDeadlineSlot: {
      directive.action = strategy_->deadline_slot(context);
      if (directive.action == FrameAction::kApplyRemote) {
        directive.outcome = SlotOutcome::kRemoteApplied;
        ++remote_applied_[pipeline];
      } else {
        SEO_ASSERT(directive.action == FrameAction::kRunLocal);
        // An expected-but-missing remote result is a safety fallback.
        if (context.offload_feasible && context.unconstrained &&
            !context.remote_fresh) {
          directive.outcome = SlotOutcome::kLocalFallback;
          ++fallbacks_[pipeline];
        } else {
          directive.outcome = SlotOutcome::kLocalDeadline;
        }
      }
      break;
    }

    case SlotKind::kNoFrame:
      SEO_ASSERT(false);
      break;
  }
  return directive;
}

SeoRuntime::TickReport SeoRuntime::tick() {
  TickReport report;
  tick_into(report);
  return report;
}

void SeoRuntime::tick_into(TickReport& report) {
  scheduler_.tick_into(hooks_.sample_deadline, tick_scratch_);
  const SeoScheduler::Tick& tick = tick_scratch_;

  report.directives.clear();
  report.interval_started = tick.interval_started;
  report.unconstrained = tick.unconstrained;
  report.delta_max = tick.delta_max;
  report.interval_tick = tick.interval_tick;

  if (tick.interval_started) {
    ++intervals_;
    if (tick.unconstrained) ++unconstrained_intervals_;
    if (hooks_.on_interval_start) hooks_.on_interval_start();
    for (std::size_t i = 0; i < scheduler_.pipeline_count(); ++i) {
      const int estimate =
          hooks_.estimate_periods ? hooks_.estimate_periods(i) : 0;
      offload_feasible_[i] =
          hooks_.estimate_periods &&
          offload_feasible(scheduler_.delta(i), tick.delta_max, estimate,
                           tick.unconstrained);
    }
  }

  current_bucket_ =
      tick.unconstrained ? kUnconstrainedBucket : tick.delta_max;

  for (std::size_t i = 0; i < tick.slots.size(); ++i) {
    if (tick.slots[i] == SlotKind::kNoFrame) continue;
    report.directives.push_back(classify(i, tick.slots[i], tick));
  }
}

bool SeoRuntime::pipeline_offload_feasible(std::size_t pipeline) const {
  SEO_EXPECT(pipeline < offload_feasible_.size());
  return offload_feasible_[pipeline];
}

void SeoRuntime::add_probe_energy(std::size_t pipeline, double tx_energy_j) {
  SEO_EXPECT(pipeline < tallies_.size());
  tallies_[pipeline].add_tx_energy(current_bucket_, tx_energy_j);
}

void SeoRuntime::record(const Directive& directive, double tx_energy_j) {
  SEO_EXPECT(directive.pipeline < tallies_.size());
  tallies_[directive.pipeline].record(directive.bucket, directive.outcome,
                                      tx_energy_j);
}

const PipelineTally& SeoRuntime::tally(std::size_t pipeline) const {
  SEO_EXPECT(pipeline < tallies_.size());
  return tallies_[pipeline];
}

std::uint64_t SeoRuntime::remote_applied(std::size_t pipeline) const {
  SEO_EXPECT(pipeline < remote_applied_.size());
  return remote_applied_[pipeline];
}

std::uint64_t SeoRuntime::fallbacks(std::size_t pipeline) const {
  SEO_EXPECT(pipeline < fallbacks_.size());
  return fallbacks_[pipeline];
}

}  // namespace seo
