#include "core/fingerprint.hpp"

#include <bit>

namespace seo {

namespace {
constexpr std::uint64_t kFnvPrime = 1099511628211ull;
}  // namespace

void FingerprintHasher::mix_bytes(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    state_ ^= static_cast<std::uint64_t>(bytes[i]);
    state_ *= kFnvPrime;
  }
}

void FingerprintHasher::mix(std::uint64_t v) {
  // Explicit little-endian serialization: the digest must not depend on
  // host byte order or on how the compiler lays out locals.
  unsigned char bytes[8];
  for (int i = 0; i < 8; ++i)
    bytes[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xff);
  mix_bytes(bytes, sizeof(bytes));
}

void FingerprintHasher::mix(double v) {
  mix(std::bit_cast<std::uint64_t>(v));
}

void FingerprintHasher::mix(std::string_view s) {
  mix(static_cast<std::uint64_t>(s.size()));
  mix_bytes(s.data(), s.size());
}

std::string FingerprintHasher::hex() const { return fingerprint_hex(state_); }

std::string fingerprint_hex(std::uint64_t digest) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[digest & 0xf];
    digest >>= 4;
  }
  return out;
}

}  // namespace seo
