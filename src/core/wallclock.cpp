#include "core/wallclock.hpp"

#include <chrono>

namespace seo {

std::int64_t wall_clock_unix_seconds() {
  // seo-lint: allow(wall-clock) -- the artifact-store age cap compares
  // last-use stamps across processes and hosts sharing one artifact dir;
  // only unix wall time has a shared epoch.  The result feeds GC decisions
  // exclusively, never artifact/report bytes (see wallclock.hpp).
  const auto since_epoch = std::chrono::system_clock::now().time_since_epoch();
  return std::chrono::duration_cast<std::chrono::seconds>(since_epoch).count();
}

}  // namespace seo
