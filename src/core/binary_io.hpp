// Canonical binary encoding — the one little-endian, fixed-width,
// FNV-1a-checksummed byte discipline shared by every durable byte stream
// in the library: the `seo-trace` record framing (sim/trace.cpp), the
// artifact-store v2 payload containers and the binary manifest
// (core/artifact_store.cpp).
//
// Extracted from the trace layer's framing helpers so a new on-disk format
// cannot drift from the established one:
//
//  * Little-endian fixed width, explicitly byte-shuffled — the wire format
//    is canonical regardless of host layout (the same discipline
//    core/fingerprint uses for digests).
//  * Doubles travel as raw IEEE-754 bit patterns: -0.0, denormals, inf and
//    NaN payloads round-trip bit-identically, never through decimal
//    formatting.
//  * Strings are u32 length-prefixed, so adjacent fields cannot alias.
//  * Checksums are FNV-1a over the exact encoded bytes (mark a start
//    offset, tail the span with its digest), so a digest mismatch means
//    corruption, never platform drift.
//
// BinaryWriter appends to a caller-owned std::string (compose frames in
// memory, then write/rename atomically); BinaryReader is a bounds-checked
// decoder over a string_view that throws BinaryIoError instead of ever
// reading past the end or trusting a length field blindly.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace seo {

/// Thrown by BinaryReader on truncation, checksum mismatch, or a length
/// field that exceeds its sanity cap.  Consumers with richer error
/// taxonomies (TraceStreamError, the artifact store) catch and rebrand it.
class BinaryIoError : public std::runtime_error {
 public:
  explicit BinaryIoError(const std::string& what_arg)
      : std::runtime_error(what_arg) {}
};

/// Little-endian appender over a caller-owned buffer.  All multi-byte
/// values are explicitly byte-shuffled; `mark()`/`checksum_from()` tail a
/// span with the FNV-1a digest of its exact bytes.
class BinaryWriter {
 public:
  explicit BinaryWriter(std::string& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u16(std::uint16_t v) { put_le(v, 2); }
  void u32(std::uint32_t v) { put_le(v, 4); }
  void u64(std::uint64_t v) { put_le(v, 8); }
  /// Two's-complement via u64, so negative values round-trip exactly.
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  /// Raw IEEE-754 bit pattern — bit-identical round trip for every value
  /// class (denormals, -0.0, infinities, NaN payloads).
  void f64(double v);

  void bytes(const void* data, std::size_t size) {
    out_.append(static_cast<const char*>(data), size);
  }
  /// u32 length prefix + raw bytes (embedded NULs are data, not
  /// terminators).
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    bytes(s.data(), s.size());
  }

  /// Current offset into the buffer — the start of a checksummed span.
  std::size_t mark() const { return out_.size(); }
  /// Appends the u64 FNV-1a digest of out[mark, end) — the canonical
  /// checksum tail every seo binary format ends its spans with.
  void checksum_from(std::size_t mark);

  std::string& buffer() { return out_; }

 private:
  void put_le(std::uint64_t v, int width) {
    for (int i = 0; i < width; ++i)
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }

  std::string& out_;
};

/// Bounds-checked little-endian decoder over one in-memory span.  Every
/// accessor throws BinaryIoError rather than read past the end; length
/// fields are validated against an explicit cap before they can drive an
/// allocation.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  std::uint8_t u8() { return static_cast<std::uint8_t>(take(1)[0]); }
  std::uint16_t u16() { return static_cast<std::uint16_t>(gather(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(gather(4)); }
  std::uint64_t u64() { return gather(8); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();

  void bytes(void* dst, std::size_t size);
  /// A view into the underlying buffer (no copy); valid while the buffer
  /// outlives the reader.
  std::string_view view(std::size_t size) {
    return std::string_view(take(size), size);
  }
  /// u32 length-prefixed string.  `max_size` guards against a corrupt
  /// length field driving an allocation: anything larger is an error, not
  /// data.
  std::string str(std::size_t max_size = kDefaultMaxString);

  std::size_t offset() const { return offset_; }
  std::size_t remaining() const { return data_.size() - offset_; }
  bool exhausted() const { return offset_ == data_.size(); }
  /// Throws unless every byte has been consumed — trailing bytes in a
  /// fixed-layout span are corruption, not data.
  void require_exhausted(const char* what) const;

  /// Reads the u64 checksum tail and verifies it against the FNV-1a digest
  /// of data[mark, current); throws BinaryIoError on mismatch.
  void verify_checksum_from(std::size_t mark, const char* what);

  static constexpr std::size_t kDefaultMaxString = 1u << 20;

 private:
  const char* take(std::size_t size);
  std::uint64_t gather(std::size_t size);

  std::string_view data_;
  std::size_t offset_ = 0;
};

/// Incremental frame extraction over a byte stream that arrives in
/// arbitrary slices — the pipe reader behind the multi-process sweep.  A
/// frame is the canonical seo discipline at u64 width:
///
///   u8 type | u64 payload_size | payload | u64 checksum
///            (FNV-1a over type + size + payload bytes)
///
/// feed() appends whatever a read(2) returned; next() yields one complete,
/// checksum-verified frame at a time and returns false while the tail of
/// the current frame is still in flight.  A corrupt length field or digest
/// throws BinaryIoError immediately — a damaged stream is never silently
/// resynchronized.  Consumed bytes are compacted away, so steady-state
/// memory is one in-flight frame, not the stream length.
class FrameAssembler {
 public:
  explicit FrameAssembler(std::uint64_t max_payload = kDefaultMaxPayload)
      : max_payload_(max_payload) {}

  void feed(const char* data, std::size_t size) {
    buffer_.append(data, size);
  }

  /// Extracts the next complete frame into (type, payload).  Returns false
  /// when more bytes are needed; throws BinaryIoError on an oversized
  /// length field or a checksum mismatch.
  bool next(std::uint8_t& type, std::string& payload);

  /// True when no partial frame is buffered — how a reader distinguishes a
  /// clean end-of-stream from truncation mid-frame.
  bool idle() const { return buffer_.size() == consumed_; }

  /// Bytes of the current partial frame still buffered.
  std::size_t buffered() const { return buffer_.size() - consumed_; }

  /// Big enough for any serialized grid-point trace block, small enough
  /// that a corrupt length field cannot drive a runaway allocation.
  static constexpr std::uint64_t kDefaultMaxPayload = 1ull << 30;

 private:
  std::string buffer_;
  std::size_t consumed_ = 0;  ///< prefix of buffer_ already handed out
  std::uint64_t max_payload_;
};

/// Appends one FrameAssembler-format frame (u8 type, u64 size, payload,
/// FNV-1a checksum) to `out` — the writer side of the pipe discipline.
void append_frame(std::string& out, std::uint8_t type,
                  std::string_view payload);

}  // namespace seo
