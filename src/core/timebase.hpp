// Unified discrete time axis — the paper's eqs. (4) and (5).
//
// A base period tau is chosen; every sensor's sampling period p_i is
// discretized to delta_i = p_i/tau if divisible, else floor(p_i/tau)+1
// (eq. 4, i.e. ceiling), and a continuous safety interval Delta_max is
// discretized to delta_max = floor(Delta_max/tau) (eq. 5) — conservative in
// both directions: sensors never scheduled faster than they sample,
// deadlines never rounded later than they expire.
#pragma once

namespace seo {

class TimeBase {
 public:
  explicit TimeBase(double tau_s);

  double tau_s() const { return tau_s_; }

  /// Eq. (4): sensor period -> base-period multiple (ceiling semantics,
  /// with a relative tolerance for the exactly-divisible branch so that
  /// e.g. 40 ms / 20 ms robustly yields 2 despite floating point).
  int discretize_period(double period_s) const;

  /// Eq. (5): safety interval -> base-period multiple (floor).
  int discretize_deadline(double delta_max_s) const;

  /// Tick index -> absolute seconds.
  double seconds(long long ticks) const {
    return static_cast<double>(ticks) * tau_s_;
  }

 private:
  double tau_s_;
};

}  // namespace seo
