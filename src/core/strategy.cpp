#include "core/strategy.hpp"

#include "util/expect.hpp"

namespace seo {

namespace {
void expect_opt_slot(const FrameContext& context) {
  SEO_EXPECT(context.kind == SlotKind::kOptSlot);
}
void expect_deadline_slot(const FrameContext& context) {
  SEO_EXPECT(context.kind == SlotKind::kDeadlineSlot);
}
}  // namespace

FrameAction LocalOnlyStrategy::opt_slot(const FrameContext& context) const {
  expect_opt_slot(context);
  return FrameAction::kRunLocal;
}

FrameAction LocalOnlyStrategy::deadline_slot(
    const FrameContext& context) const {
  expect_deadline_slot(context);
  return FrameAction::kRunLocal;
}

FrameAction GatingStrategy::opt_slot(const FrameContext& context) const {
  expect_opt_slot(context);
  return FrameAction::kGate;
}

FrameAction GatingStrategy::deadline_slot(const FrameContext& context) const {
  expect_deadline_slot(context);
  // Gating has no substitute output: the full model always runs here.
  return FrameAction::kRunLocal;
}

FrameAction ScaledStrategy::opt_slot(const FrameContext& context) const {
  expect_opt_slot(context);
  return FrameAction::kRunScaled;
}

FrameAction ScaledStrategy::deadline_slot(const FrameContext& context) const {
  expect_deadline_slot(context);
  // The deadline slot demands full-fidelity state: full model.
  return FrameAction::kRunLocal;
}

FrameAction OffloadStrategy::opt_slot(const FrameContext& context) const {
  expect_opt_slot(context);
  return context.offload_feasible ? FrameAction::kOffload
                                  : FrameAction::kRunLocal;
}

FrameAction OffloadStrategy::deadline_slot(const FrameContext& context) const {
  expect_deadline_slot(context);
  if (!context.offload_feasible) return FrameAction::kRunLocal;
  // Constrained intervals: Algorithm 1 lines 14-15 — the local model is
  // invoked unconditionally to meet the safety deadline.
  if (!context.unconstrained) return FrameAction::kRunLocal;
  // Vacuous deadline: a fresh remote result satisfies the refresh
  // requirement (eq. 7's indicator does not fire).
  return context.remote_fresh ? FrameAction::kApplyRemote
                              : FrameAction::kRunLocal;
}

bool offload_feasible(int delta_i, int delta_max, int estimate_periods,
                      bool unconstrained) {
  SEO_EXPECT(delta_i >= 1);
  SEO_EXPECT(delta_max >= 1);
  SEO_EXPECT(estimate_periods >= 0);
  // Unconstrained streaming: responses must still land within the refresh
  // window (delta_max == cap here), or every deadline slot would fall back
  // locally while the radio burns energy on unusable uplinks.
  if (unconstrained) return estimate_periods <= delta_max;
  const int ds = SeoScheduler::deadline_slot(delta_i, delta_max);
  return ds >= 1 && estimate_periods <= ds;
}

double offload_freshness_bound_s(int deadline_cap, double tau_s) {
  SEO_EXPECT(deadline_cap >= 1);
  SEO_EXPECT(tau_s > 0.0);
  return static_cast<double>(deadline_cap) * tau_s;
}

}  // namespace seo
