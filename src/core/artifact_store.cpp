#include "core/artifact_store.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

namespace seo {

namespace fs = std::filesystem;

ArtifactStoreRegistry& ArtifactStoreRegistry::global() {
  static ArtifactStoreRegistry registry;
  return registry;
}

void ArtifactStoreRegistry::add(Handle handle) {
  std::lock_guard<std::mutex> lock(mutex_);
  handles_.push_back(std::move(handle));
}

std::vector<ArtifactKindStats> ArtifactStoreRegistry::snapshot() const {
  std::vector<Handle> handles;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    handles = handles_;
  }
  // Stats calls happen outside the registry lock: each store takes its own
  // mutex and must never wait behind an unrelated kind's snapshot.
  std::vector<ArtifactKindStats> out;
  out.reserve(handles.size());
  for (const auto& handle : handles)
    out.push_back(ArtifactKindStats{handle.kind, handle.stats()});
  return out;
}

void ArtifactStoreRegistry::set_memory_budget_all(
    const ArtifactMemoryBudget& budget) const {
  std::vector<Handle> handles;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    handles = handles_;
  }
  for (const auto& handle : handles) handle.set_budget(budget);
}

void ArtifactStoreRegistry::clear_all() const {
  std::vector<Handle> handles;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    handles = handles_;
  }
  for (const auto& handle : handles) handle.clear();
}

namespace artifact_detail {

namespace {

constexpr const char* kManifestName = "manifest.txt";
constexpr const char* kManifestMagic = "seo-artifact-manifest";
constexpr int kManifestVersion = 1;
/// Temp files from crashed writers older than this are GC'd.
constexpr double kStaleTmpAgeS = 300.0;

/// One process-wide mutex for manifest read-modify-write cycles.  Manifest
/// operations happen at most once per distinct artifact per process (a
/// disk load or store; in-memory hits never touch it) and each cycle is an
/// O(dir) text parse + rewrite, amortized against the multi-millisecond
/// build it replaced — so a single lock beats a per-directory lock table.
/// If artifact dirs ever reach thousands of entries, the flush-once /
/// advisory-locking design sketched in ROADMAP.md replaces this.
std::mutex& manifest_mutex() {
  static std::mutex mutex;
  return mutex;
}

struct ManifestEntry {
  std::uint64_t seq = 0;        ///< logical last-use order (higher = newer)
  std::uint64_t bytes = 0;
  std::int64_t last_used = 0;   ///< unix seconds, for the age cap
};

using Manifest = std::map<std::string, ManifestEntry>;

std::int64_t now_unix() {
  return std::chrono::duration_cast<std::chrono::seconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

/// Best-effort read; a missing or malformed manifest is an empty one (the
/// GC then falls back to "everything is oldest", which only costs warmth).
Manifest read_manifest(const fs::path& dir) {
  Manifest manifest;
  std::ifstream in(dir / kManifestName);
  if (!in) return manifest;
  std::string magic;
  int version = 0;
  in >> magic >> version;
  if (magic != kManifestMagic || version != kManifestVersion)
    return manifest;
  ManifestEntry entry;
  std::string file;
  while (in >> entry.seq >> entry.bytes >> entry.last_used >> file)
    manifest[file] = entry;
  return manifest;
}

void write_manifest(const fs::path& dir, const Manifest& manifest) {
  // Temp-write + rename so concurrent readers (other processes) only ever
  // observe a complete manifest.
  const fs::path path = dir / kManifestName;
  const fs::path tmp =
      dir / (std::string(kManifestName) + ".tmp." +
             std::to_string(static_cast<long long>(::getpid())));
  {
    std::ofstream out(tmp);
    if (!out) throw ContractViolation("cannot open " + tmp.string());
    out << kManifestMagic << " " << kManifestVersion << "\n";
    for (const auto& [file, entry] : manifest)
      out << entry.seq << " " << entry.bytes << " " << entry.last_used << " "
          << file << "\n";
    if (!out) throw ContractViolation("short write to " + tmp.string());
  }
  fs::rename(tmp, path);
}

std::uint64_t next_seq(const Manifest& manifest) {
  std::uint64_t max_seq = 0;
  for (const auto& [file, entry] : manifest)
    max_seq = std::max(max_seq, entry.seq);
  return max_seq + 1;
}

void record_use(const fs::path& dir, const std::string& file,
                std::uint64_t bytes) {
  std::lock_guard<std::mutex> lock(manifest_mutex());
  Manifest manifest = read_manifest(dir);
  ManifestEntry& entry = manifest[file];
  entry.seq = next_seq(manifest);
  entry.bytes = bytes;
  entry.last_used = now_unix();
  write_manifest(dir, manifest);
}

bool is_tmp_file(const std::string& name) {
  return name.find(".tmp.") != std::string::npos;
}

}  // namespace

std::string artifact_file_name(const std::string& kind, int version,
                               const std::string& hex) {
  return kind + "-v" + std::to_string(version) + "-" + hex + ".txt";
}

bool read_artifact_payload(const std::string& path, const std::string& kind,
                           int version, const std::string& hex,
                           std::string& payload_out) {
  std::ifstream in(path);
  if (!in) return false;  // cold store: not a failure
  // The file name is the address, but never trust content blindly: the
  // header repeats the kind, format version and full key digest (a renamed
  // or hand-edited artifact must re-prove its identity before the payload
  // is even parsed).
  std::string magic, file_kind, digest_hex;
  int file_version = 0;
  in >> magic >> file_kind >> file_version >> digest_hex;
  if (!in || magic != "seo-artifact" || file_kind != kind ||
      file_version != version || digest_hex != hex)
    throw ContractViolation("artifact header does not match its key: " + path);
  in.get();  // consume the newline terminating the header
  std::ostringstream payload;
  payload << in.rdbuf();
  payload_out = payload.str();
  return true;
}

void write_artifact(const ArtifactDiskOptions& disk, const std::string& kind,
                    int version, const std::string& hex,
                    const std::string& payload) {
  const fs::path dir(disk.dir);
  const std::string name = artifact_file_name(kind, version, hex);
  const fs::path path = dir / name;
  // Temp-write + rename so concurrent processes only ever observe complete
  // artifacts; the pid suffix keeps same-key writers from sharing a temp
  // file (their contents are identical, so last rename winning is fine).
  const fs::path tmp =
      dir / (name + ".tmp." + std::to_string(static_cast<long long>(::getpid())));
  try {
    fs::create_directories(dir);
    std::uint64_t bytes = 0;
    {
      std::ofstream out(tmp);
      if (!out) throw ContractViolation("cannot open " + tmp.string());
      out << "seo-artifact " << kind << " " << version << " " << hex << "\n"
          << payload;
      if (!out) throw ContractViolation("short write to " + tmp.string());
    }
    bytes = static_cast<std::uint64_t>(fs::file_size(tmp));
    fs::rename(tmp, path);
    record_use(dir, name, bytes);
  } catch (...) {
    std::error_code ec;
    fs::remove(tmp, ec);
    throw;
  }
  // With caps configured, every store is followed by a sweep so the dir
  // can never drift past its bound between explicit GC runs.
  if (disk.max_bytes > 0 || disk.max_age_s > 0.0)
    artifact_store_gc(disk.dir, disk.max_bytes, disk.max_age_s);
}

void touch_manifest(const std::string& dir, const std::string& file) {
  try {
    std::uint64_t bytes = 0;
    std::error_code ec;
    const auto size = fs::file_size(fs::path(dir) / file, ec);
    if (!ec) bytes = static_cast<std::uint64_t>(size);
    record_use(fs::path(dir), file, bytes);
  } catch (const std::exception& e) {
    log_warn() << "artifact store: manifest touch failed for " << file << " ("
               << e.what() << ")";
  }
}

}  // namespace artifact_detail

ArtifactGcResult artifact_store_gc(const std::string& dir,
                                   std::uint64_t max_bytes,
                                   double max_age_s) {
  using artifact_detail::is_tmp_file;
  using artifact_detail::kStaleTmpAgeS;
  using artifact_detail::Manifest;
  using artifact_detail::ManifestEntry;
  ArtifactGcResult result;
  const fs::path root(dir);
  std::error_code ec;
  if (!fs::is_directory(root, ec)) return result;

  std::lock_guard<std::mutex> lock(artifact_detail::manifest_mutex());
  auto manifest = artifact_detail::read_manifest(root);
  const std::int64_t now = artifact_detail::now_unix();

  struct Candidate {
    std::string name;
    std::uint64_t seq = 0;
    std::uint64_t bytes = 0;
    std::int64_t last_used = 0;
  };
  std::vector<Candidate> candidates;
  for (const auto& dirent : fs::directory_iterator(root, ec)) {
    if (!dirent.is_regular_file()) continue;
    const std::string name = dirent.path().filename().string();
    if (name == artifact_detail::kManifestName) continue;
    if (is_tmp_file(name)) {
      // A temp file is either a live writer mid-store or debris from a
      // crash; only the stale kind is removed.
      const auto mtime = fs::last_write_time(dirent.path(), ec);
      const double age_s =
          ec ? 0.0
             : std::chrono::duration<double>(
                   fs::file_time_type::clock::now() - mtime)
                   .count();
      if (age_s > kStaleTmpAgeS) {
        std::error_code rm;
        fs::remove(dirent.path(), rm);
        if (!rm) ++result.removed;
      }
      continue;
    }
    Candidate c;
    c.name = name;
    c.bytes = static_cast<std::uint64_t>(dirent.file_size(ec));
    if (ec) c.bytes = 0;
    const auto it = manifest.find(name);
    if (it != manifest.end()) {
      // Disk sizes win over manifest bookkeeping (the file is the truth).
      c.seq = it->second.seq;
      c.last_used = it->second.last_used;
    } else {
      // Unmanaged file (older format, foreign writer): oldest possible, so
      // the sweep reclaims it first.
      c.seq = 0;
      c.last_used = 0;
    }
    candidates.push_back(std::move(c));
    result.bytes_before += candidates.back().bytes;
  }
  result.scanned = candidates.size();
  if (candidates.empty()) {
    // Still drop manifest entries for files that no longer exist.
    if (!manifest.empty()) artifact_detail::write_manifest(root, Manifest{});
    return result;
  }

  // LRU order: lowest seq first; name breaks ties deterministically.
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.seq != b.seq ? a.seq < b.seq : a.name < b.name;
            });

  std::uint64_t total = result.bytes_before;
  std::vector<bool> removed(candidates.size(), false);
  // The most-recently-used artifact is always kept: removing it would only
  // force an immediate rebuild of the hottest key without bounding anything
  // the next store wouldn't immediately unbound again.
  const std::size_t keep_last = candidates.size() - 1;
  for (std::size_t i = 0; i < keep_last; ++i) {
    const bool too_old =
        max_age_s > 0.0 &&
        static_cast<double>(now - candidates[i].last_used) > max_age_s;
    const bool over_budget = max_bytes > 0 && total > max_bytes;
    if (!too_old && !over_budget) {
      if (max_age_s <= 0.0) break;  // size-sorted prefix done, no age cap
      continue;  // age cap must still examine every remaining file
    }
    std::error_code rm;
    fs::remove(root / candidates[i].name, rm);
    if (rm) continue;  // unremovable: leave its bytes counted
    removed[i] = true;
    total -= candidates[i].bytes;
    ++result.removed;
  }
  result.bytes_after = total;

  // Rewrite the manifest to exactly the surviving files.
  Manifest survivors;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (removed[i]) continue;
    ManifestEntry entry;
    entry.seq = candidates[i].seq;
    entry.bytes = candidates[i].bytes;
    entry.last_used = candidates[i].last_used;
    survivors[candidates[i].name] = entry;
  }
  artifact_detail::write_manifest(root, survivors);
  return result;
}

}  // namespace seo
