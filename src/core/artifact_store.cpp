#include "core/artifact_store.hpp"

#include "core/wallclock.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace seo {

namespace fs = std::filesystem;

ArtifactStoreRegistry& ArtifactStoreRegistry::global() {
  static ArtifactStoreRegistry registry;
  return registry;
}

void ArtifactStoreRegistry::add(Handle handle) {
  std::lock_guard<std::mutex> lock(mutex_);
  handles_.push_back(std::move(handle));
}

std::vector<ArtifactKindStats> ArtifactStoreRegistry::snapshot() const {
  std::vector<Handle> handles;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    handles = handles_;
  }
  // Stats calls happen outside the registry lock: each store takes its own
  // mutex and must never wait behind an unrelated kind's snapshot.
  std::vector<ArtifactKindStats> out;
  out.reserve(handles.size());
  for (const auto& handle : handles)
    out.push_back(ArtifactKindStats{handle.kind, handle.stats()});
  // Registration order depends on which thread first touched each global
  // accessor; sort by kind so stats lines print identically every run.
  std::sort(out.begin(), out.end(),
            [](const ArtifactKindStats& a, const ArtifactKindStats& b) {
              return a.kind < b.kind;
            });
  return out;
}

void ArtifactStoreRegistry::set_memory_budget_all(
    const ArtifactMemoryBudget& budget) const {
  std::vector<Handle> handles;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    handles = handles_;
  }
  for (const auto& handle : handles) handle.set_budget(budget);
}

void ArtifactStoreRegistry::clear_all() const {
  std::vector<Handle> handles;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    handles = handles_;
  }
  for (const auto& handle : handles) handle.clear();
}

namespace artifact_detail {

namespace {

// --- On-disk names ---------------------------------------------------------

constexpr const char* kManifestBinName = "manifest.bin";
/// Legacy v1 text manifest — still read as a migration source, replaced by
/// the binary manifest on the first flush.
constexpr const char* kManifestTextName = "manifest.txt";
/// The directory-wide advisory lock every manifest flush and GC sweep
/// serializes on (never unlinked — unlinking an advisory lock file is the
/// classic two-holders race).
constexpr const char* kManifestLockName = "manifest.lock";

constexpr const char* kManifestTextMagic = "seo-artifact-manifest";
constexpr int kManifestTextVersion = 1;

/// Binary manifest v2: magic, version, entry count, (name, seq, bytes,
/// last_used) per entry, FNV-1a checksum tail.  Concurrent writers are
/// tolerated by merging on read with last-writer-wins sequence numbers.
constexpr char kManifestMagic[13] = "seo-manifest";  // includes the NUL
constexpr std::uint16_t kManifestVersion = 2;

/// v2 artifact container magic (13 bytes, includes the NUL).
constexpr char kArtifactMagic[13] = "seo-artifact";
constexpr std::uint16_t kArtifactContainerVersion = 2;

/// Temp files from crashed writers older than this are GC'd.
constexpr double kStaleTmpAgeS = 300.0;

/// In-memory manifest mutations per automatic flush to disk.
constexpr unsigned kManifestFlushEvery = 8;

struct ManifestEntry {
  std::uint64_t seq = 0;        ///< logical last-use order (higher = newer)
  std::uint64_t bytes = 0;
  std::int64_t last_used = 0;   ///< unix seconds, for the age cap
};

using Manifest = std::map<std::string, ManifestEntry>;

// Manifest last-use stamps need a cross-process, cross-host epoch, which
// only wall time provides; core/wallclock documents why this is the one
// sanctioned wall-clock read and the GC-only contract that keeps it safe.
std::int64_t now_unix() { return wall_clock_unix_seconds(); }

/// RAII blocking flock on the directory's manifest.lock — serializes
/// manifest flushes and GC sweeps across processes.  Degrades to unlocked
/// (held() false) on filesystems that refuse advisory locks; flushes then
/// still go through temp-write + rename, so readers never see a torn
/// manifest, only possibly a stale one.
class DirLock {
 public:
  explicit DirLock(const fs::path& dir) {
    std::error_code ec;
    fs::create_directories(dir, ec);
    const std::string path = (dir / kManifestLockName).string();
    const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0666);
    if (fd < 0) return;
    if (::flock(fd, LOCK_EX) != 0) {
      ::close(fd);
      return;
    }
    fd_ = fd;
  }
  ~DirLock() {
    if (fd_ >= 0) {
      ::flock(fd_, LOCK_UN);
      ::close(fd_);
    }
  }
  DirLock(const DirLock&) = delete;
  DirLock& operator=(const DirLock&) = delete;
  bool held() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

/// Best-effort read of the on-disk manifest; a missing or malformed one is
/// an empty one (the GC then falls back to "everything is oldest", which
/// only costs warmth, never correctness).
Manifest read_manifest_disk(const fs::path& dir) {
  Manifest manifest;
  // Binary v2 first.
  {
    std::ifstream in(dir / kManifestBinName, std::ios::binary);
    if (in) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      const std::string blob = buffer.str();
      try {
        BinaryReader r{std::string_view(blob)};
        const std::size_t start = r.offset();
        char magic[sizeof kManifestMagic];
        r.bytes(magic, sizeof magic);
        if (std::memcmp(magic, kManifestMagic, sizeof magic) != 0 ||
            r.u16() != kManifestVersion)
          return manifest;
        const std::uint32_t count = r.u32();
        for (std::uint32_t i = 0; i < count; ++i) {
          const std::string name = r.str();
          ManifestEntry entry;
          entry.seq = r.u64();
          entry.bytes = r.u64();
          entry.last_used = r.i64();
          manifest[name] = entry;
        }
        r.verify_checksum_from(start, "manifest");
        r.require_exhausted("manifest");
        return manifest;
      } catch (const std::exception&) {
        return Manifest{};  // corrupt manifest: start cold, lose only warmth
      }
    }
  }
  // Legacy v1 text fallback (pre-binary dirs migrate on first flush).
  std::ifstream in(dir / kManifestTextName);
  if (!in) return manifest;
  std::string magic;
  int version = 0;
  in >> magic >> version;
  if (magic != kManifestTextMagic || version != kManifestTextVersion)
    return manifest;
  ManifestEntry entry;
  std::string file;
  while (in >> entry.seq >> entry.bytes >> entry.last_used >> file)
    manifest[file] = entry;
  return manifest;
}

/// Temp-write + rename so concurrent readers (other processes) only ever
/// observe a complete manifest; the legacy text manifest is retired once
/// the binary one exists.
void write_manifest_disk(const fs::path& dir, const Manifest& manifest) {
  const fs::path path = dir / kManifestBinName;
  const fs::path tmp =
      dir / (std::string(kManifestBinName) + ".tmp." +
             std::to_string(static_cast<long long>(::getpid())));
  std::string blob;
  BinaryWriter w(blob);
  const std::size_t start = w.mark();
  w.bytes(kManifestMagic, sizeof kManifestMagic);
  w.u16(kManifestVersion);
  w.u32(static_cast<std::uint32_t>(manifest.size()));
  for (const auto& [file, entry] : manifest) {
    w.str(file);
    w.u64(entry.seq);
    w.u64(entry.bytes);
    w.i64(entry.last_used);
  }
  w.checksum_from(start);
  {
    std::ofstream out(tmp, std::ios::binary);
    if (!out) throw ContractViolation("cannot open " + tmp.string());
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    if (!out) throw ContractViolation("short write to " + tmp.string());
  }
  fs::rename(tmp, path);
  std::error_code ec;
  fs::remove(dir / kManifestTextName, ec);
}

std::uint64_t max_seq(const Manifest& manifest) {
  std::uint64_t seq = 0;
  for (const auto& [file, entry] : manifest)
    seq = std::max(seq, entry.seq);
  return seq;
}

/// Last-writer-wins merge: per file, the entry with the higher sequence
/// number survives (two processes that both used a file disagree only
/// about *how recently* — either answer keeps the file warm).
void merge_manifest(Manifest& into, const Manifest& from) {
  for (const auto& [file, entry] : from) {
    auto it = into.find(file);
    if (it == into.end() || entry.seq > it->second.seq)
      into[file] = entry;
  }
}

bool is_tmp_file(const std::string& name) {
  return name.find(".tmp.") != std::string::npos;
}

bool is_lock_file(const std::string& name) {
  return name.size() > 5 && name.compare(name.size() - 5, 5, ".lock") == 0;
}

/// The per-directory in-memory manifest: loaded from disk once per
/// process, mutated in memory (O(1) per artifact use instead of an O(dir)
/// text read-modify-write), flushed under the directory lock every few
/// updates, on GC, and at process exit.
class ManifestCache {
 public:
  explicit ManifestCache(fs::path dir) : dir_(std::move(dir)) {}

  ~ManifestCache() {
    // Exit flush: best effort, never throws out of a destructor.
    try {
      flush();
    } catch (...) {
    }
  }

  /// The process-wide cache for `dir` (normalized), created on first use.
  /// The registry is a function-local static destroyed at process exit —
  /// each cache's destructor flushes its dirty manifest, which is the
  /// "flush on exit" leg of the manifest policy.
  static ManifestCache& for_dir(const fs::path& dir) {
    static std::mutex registry_mutex;
    static std::map<std::string, std::unique_ptr<ManifestCache>> registry;
    std::error_code ec;
    fs::path normal = fs::weakly_canonical(dir, ec);
    if (ec) normal = fs::absolute(dir, ec);
    const std::string key = normal.empty() ? dir.string() : normal.string();
    std::lock_guard<std::mutex> lock(registry_mutex);
    auto& slot = registry[key];
    if (!slot) slot = std::make_unique<ManifestCache>(dir);
    return *slot;
  }

  /// Every live cache, for flush_manifests() and the exit hook.
  static void flush_all() {
    for (ManifestCache* cache : instances()) cache->flush();
  }

  void record_use(const std::string& file, std::uint64_t bytes) {
    std::lock_guard<std::mutex> lock(mutex_);
    ensure_loaded_locked();
    ManifestEntry& entry = mem_[file];
    entry.seq = ++max_seq_;
    entry.bytes = bytes;
    entry.last_used = now_unix();
    if (++dirty_ >= kManifestFlushEvery) flush_locked();
  }

  void flush() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (dirty_ == 0) return;
    // A deleted directory (a test's temp dir, an operator's rm -rf) makes
    // its manifest moot: don't resurrect the dir just to describe nothing.
    std::error_code ec;
    if (!fs::is_directory(dir_, ec)) {
      dirty_ = 0;
      return;
    }
    flush_locked();
  }

  void debug_backdate(std::int64_t last_used) {
    std::lock_guard<std::mutex> lock(mutex_);
    ensure_loaded_locked();
    DirLock dir_lock(dir_);
    merge_manifest(mem_, read_manifest_disk(dir_));
    max_seq_ = std::max(max_seq_, max_seq(mem_));
    for (auto& [file, entry] : mem_) entry.last_used = last_used;
    write_manifest_disk(dir_, mem_);
    dirty_ = 0;
  }

  ArtifactGcResult gc(std::uint64_t max_bytes, double max_age_s);

 private:
  static std::vector<ManifestCache*>& instances_storage() {
    static std::vector<ManifestCache*> list;
    return list;
  }
  static std::mutex& instances_mutex() {
    static std::mutex mutex;
    return mutex;
  }
  static std::vector<ManifestCache*> instances() {
    std::lock_guard<std::mutex> lock(instances_mutex());
    return instances_storage();
  }

  void ensure_loaded_locked() {
    if (loaded_) return;
    mem_ = read_manifest_disk(dir_);
    max_seq_ = max_seq(mem_);
    loaded_ = true;
    std::lock_guard<std::mutex> lock(instances_mutex());
    instances_storage().push_back(this);
  }

  /// Merge-with-disk + write, under the directory lock.  Assumes mutex_.
  void flush_locked() {
    DirLock dir_lock(dir_);
    merge_manifest(mem_, read_manifest_disk(dir_));
    max_seq_ = std::max(max_seq_, max_seq(mem_));
    write_manifest_disk(dir_, mem_);
    dirty_ = 0;
  }

  std::mutex mutex_;
  fs::path dir_;
  Manifest mem_;
  bool loaded_ = false;
  unsigned dirty_ = 0;
  std::uint64_t max_seq_ = 0;
};

}  // namespace

// --- DigestLock ------------------------------------------------------------

DigestLock::DigestLock(const std::string& dir,
                       const std::string& artifact_name) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  const std::string path = dir + "/" + artifact_name + ".lock";
  // open / flock / verify loop: the GC may unlink a lock file between our
  // open and flock (it only reclaims locks nobody holds), and a lock on an
  // unlinked inode excludes nobody — so after acquiring, the fd's inode
  // must still be the one the path names, else retry on the fresh file.
  for (int attempt = 0; attempt < 16; ++attempt) {
    const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0666);
    if (fd < 0) return;  // degrade: per-process single-flight only
    if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
      if (errno != EWOULDBLOCK) {
        ::close(fd);  // e.g. ENOLCK: filesystem refuses advisory locks
        return;
      }
      waited_ = true;  // another process is building this digest right now
      if (::flock(fd, LOCK_EX) != 0) {
        ::close(fd);
        return;
      }
    }
    struct stat held {};
    struct stat current {};
    if (::fstat(fd, &held) == 0 && ::stat(path.c_str(), &current) == 0 &&
        held.st_ino == current.st_ino && held.st_dev == current.st_dev) {
      fd_ = fd;
      return;
    }
    ::flock(fd, LOCK_UN);
    ::close(fd);
  }
}

DigestLock::~DigestLock() {
  // Release but never unlink: unlinking a lock file another process has
  // already opened creates two holders of different inodes.  Empty .lock
  // sidecars are reclaimed by the GC sweep (which checks acquirability).
  if (fd_ >= 0) {
    ::flock(fd_, LOCK_UN);
    ::close(fd_);
  }
}

// --- v2 binary artifact container -------------------------------------------

std::string artifact_file_name(const std::string& kind, int version,
                               const std::string& hex) {
  return kind + "-v" + std::to_string(version) + "-" + hex + ".bin";
}

bool read_artifact_payload(const std::string& path, const std::string& kind,
                           int version, std::uint64_t digest,
                           std::string& payload_out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;  // cold store: not a failure
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string blob = buffer.str();
  // The file name is the address, but never trust content blindly: the
  // checksummed header repeats the kind, format version and full key
  // digest (a renamed or hand-edited artifact must re-prove its identity
  // before the payload is even parsed), and the payload carries its own
  // checksum so truncation or bit rot surfaces here, not as a wrong value.
  try {
    BinaryReader r{std::string_view(blob)};
    const std::size_t start = r.offset();
    char magic[sizeof kArtifactMagic];
    r.bytes(magic, sizeof magic);
    if (std::memcmp(magic, kArtifactMagic, sizeof magic) != 0)
      throw ContractViolation("not a seo-artifact container: " + path);
    const std::uint16_t container = r.u16();
    if (container != kArtifactContainerVersion)
      throw ContractViolation("unsupported artifact container version " +
                              std::to_string(container) + ": " + path);
    const std::string file_kind = r.str(256);
    const std::uint32_t file_version = r.u32();
    const std::uint64_t file_digest = r.u64();
    const std::uint64_t payload_size = r.u64();
    r.verify_checksum_from(start, "artifact header");
    if (file_kind != kind ||
        file_version != static_cast<std::uint32_t>(version) ||
        file_digest != digest)
      throw ContractViolation("artifact header does not match its key: " +
                              path);
    const std::size_t payload_start = r.offset();
    const std::string_view payload = r.view(payload_size);
    r.verify_checksum_from(payload_start, "artifact payload");
    r.require_exhausted("artifact container");
    payload_out.assign(payload);
    return true;
  } catch (const BinaryIoError& e) {
    throw ContractViolation("corrupt artifact container " + path + ": " +
                            e.what());
  }
}

void write_artifact(const ArtifactDiskOptions& disk, const std::string& kind,
                    int version, std::uint64_t digest,
                    const std::string& payload) {
  const fs::path dir(disk.dir);
  const std::string name =
      artifact_file_name(kind, version, fingerprint_hex(digest));
  const fs::path path = dir / name;
  // Temp-write + rename so concurrent processes only ever observe complete
  // artifacts; the pid suffix keeps same-key writers from sharing a temp
  // file (their contents are identical, so last rename winning is fine).
  const fs::path tmp =
      dir /
      (name + ".tmp." + std::to_string(static_cast<long long>(::getpid())));
  std::string blob;
  BinaryWriter w(blob);
  const std::size_t start = w.mark();
  w.bytes(kArtifactMagic, sizeof kArtifactMagic);
  w.u16(kArtifactContainerVersion);
  w.str(kind);
  w.u32(static_cast<std::uint32_t>(version));
  w.u64(digest);
  w.u64(payload.size());
  w.checksum_from(start);
  const std::size_t payload_start = w.mark();
  w.bytes(payload.data(), payload.size());
  w.checksum_from(payload_start);
  try {
    fs::create_directories(dir);
    {
      std::ofstream out(tmp, std::ios::binary);
      if (!out) throw ContractViolation("cannot open " + tmp.string());
      out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
      if (!out) throw ContractViolation("short write to " + tmp.string());
    }
    fs::rename(tmp, path);
    ManifestCache::for_dir(dir).record_use(name, blob.size());
  } catch (...) {
    std::error_code ec;
    fs::remove(tmp, ec);
    throw;
  }
  // With caps configured, every store is followed by a sweep so the dir
  // can never drift past its bound between explicit GC runs.
  if (disk.max_bytes > 0 || disk.max_age_s > 0.0)
    artifact_store_gc(disk.dir, disk.max_bytes, disk.max_age_s);
}

void touch_manifest(const std::string& dir, const std::string& file) {
  try {
    std::uint64_t bytes = 0;
    std::error_code ec;
    const auto size = fs::file_size(fs::path(dir) / file, ec);
    if (!ec) bytes = static_cast<std::uint64_t>(size);
    ManifestCache::for_dir(fs::path(dir)).record_use(file, bytes);
  } catch (const std::exception& e) {
    log_warn() << "artifact store: manifest touch failed for " << file << " ("
               << e.what() << ")";
  }
}

void flush_manifests() { ManifestCache::flush_all(); }

void debug_backdate_manifest(const std::string& dir, std::int64_t last_used) {
  ManifestCache::for_dir(fs::path(dir)).debug_backdate(last_used);
}

// --- GC ---------------------------------------------------------------------

namespace {

ArtifactGcResult ManifestCache::gc(std::uint64_t max_bytes, double max_age_s) {
  ArtifactGcResult result;
  std::error_code ec;
  if (!fs::is_directory(dir_, ec)) return result;

  std::lock_guard<std::mutex> lock(mutex_);
  ensure_loaded_locked();
  // The sweep runs under the directory lock with a freshly merged view:
  // deciding LRU order from a stale in-memory manifest could delete
  // artifacts another process just stored or touched.
  DirLock dir_lock(dir_);
  merge_manifest(mem_, read_manifest_disk(dir_));
  max_seq_ = std::max(max_seq_, max_seq(mem_));
  const std::int64_t now = now_unix();

  struct Candidate {
    std::string name;
    std::uint64_t seq = 0;
    std::uint64_t bytes = 0;
    std::int64_t last_used = 0;
  };
  std::vector<Candidate> candidates;
  for (const auto& dirent : fs::directory_iterator(dir_, ec)) {
    if (!dirent.is_regular_file()) continue;
    const std::string name = dirent.path().filename().string();
    if (name == kManifestBinName || name == kManifestTextName ||
        name == kManifestLockName)
      continue;
    if (is_tmp_file(name)) {
      // A temp file is either a live writer mid-store or debris from a
      // crash; only the stale kind is removed.
      const auto mtime = fs::last_write_time(dirent.path(), ec);
      const double age_s =
          ec ? 0.0
             : std::chrono::duration<double>(
                   fs::file_time_type::clock::now() - mtime)
                   .count();
      if (age_s > kStaleTmpAgeS) {
        // Bookkeeping debris, not an artifact: reclaimed silently (it is
        // not part of `scanned`, so it must not inflate `removed` either).
        std::error_code rm;
        fs::remove(dirent.path(), rm);
      }
      continue;
    }
    if (is_lock_file(name)) {
      // A digest-lock sidecar is reclaimed only when nobody holds it (an
      // acquirable lock is an idle one).  A racer that just opened the
      // path re-verifies its inode after acquiring and retries on the
      // fresh file, so unlinking here is safe.
      const int fd =
          ::open(dirent.path().c_str(), O_RDWR | O_CLOEXEC);
      if (fd < 0) continue;
      if (::flock(fd, LOCK_EX | LOCK_NB) == 0) {
        // Like stale temp files, sidecars are debris outside the
        // scanned/removed artifact accounting.
        std::error_code rm;
        fs::remove(dirent.path(), rm);
        ::flock(fd, LOCK_UN);
      }
      ::close(fd);
      continue;
    }
    Candidate c;
    c.name = name;
    c.bytes = static_cast<std::uint64_t>(dirent.file_size(ec));
    if (ec) c.bytes = 0;
    const auto it = mem_.find(name);
    if (it != mem_.end()) {
      // Disk sizes win over manifest bookkeeping (the file is the truth).
      c.seq = it->second.seq;
      c.last_used = it->second.last_used;
    } else {
      // Unmanaged file (older format, foreign writer): oldest possible, so
      // the sweep reclaims it first.
      c.seq = 0;
      c.last_used = 0;
    }
    candidates.push_back(std::move(c));
    result.bytes_before += candidates.back().bytes;
  }
  result.scanned = candidates.size();
  if (candidates.empty()) {
    // Still drop manifest entries for files that no longer exist.
    if (!mem_.empty()) {
      mem_.clear();
      write_manifest_disk(dir_, mem_);
      dirty_ = 0;
    }
    return result;
  }

  // LRU order: lowest seq first; name breaks ties deterministically.
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.seq != b.seq ? a.seq < b.seq : a.name < b.name;
            });

  std::uint64_t total = result.bytes_before;
  std::vector<bool> removed(candidates.size(), false);
  // The most-recently-used artifact is always kept: removing it would only
  // force an immediate rebuild of the hottest key without bounding anything
  // the next store wouldn't immediately unbound again.
  const std::size_t keep_last = candidates.size() - 1;
  for (std::size_t i = 0; i < keep_last; ++i) {
    const bool too_old =
        max_age_s > 0.0 &&
        static_cast<double>(now - candidates[i].last_used) > max_age_s;
    const bool over_budget = max_bytes > 0 && total > max_bytes;
    if (!too_old && !over_budget) {
      if (max_age_s <= 0.0) break;  // size-sorted prefix done, no age cap
      continue;  // age cap must still examine every remaining file
    }
    std::error_code rm;
    fs::remove(dir_ / candidates[i].name, rm);
    if (rm) continue;  // unremovable: leave its bytes counted
    removed[i] = true;
    total -= candidates[i].bytes;
    ++result.removed;
  }
  result.bytes_after = total;

  // The manifest becomes exactly the surviving files, in memory and on
  // disk (entries for files deleted here or by other processes drop out).
  Manifest survivors;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (removed[i]) continue;
    ManifestEntry entry;
    entry.seq = candidates[i].seq;
    entry.bytes = candidates[i].bytes;
    entry.last_used = candidates[i].last_used;
    survivors[candidates[i].name] = entry;
  }
  mem_ = std::move(survivors);
  write_manifest_disk(dir_, mem_);
  dirty_ = 0;
  return result;
}

}  // namespace

}  // namespace artifact_detail

ArtifactGcResult artifact_store_gc(const std::string& dir,
                                   std::uint64_t max_bytes,
                                   double max_age_s) {
  return artifact_detail::ManifestCache::for_dir(fs::path(dir))
      .gc(max_bytes, max_age_s);
}

}  // namespace seo
