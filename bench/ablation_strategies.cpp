// Ablation A6: optimization-method comparison — gating vs. model scaling
// vs. offloading under the same safety deadlines.
//
// Gating maximizes accelerator savings but serves stale detections in
// optimization slots; model scaling keeps outputs fresh every frame at a
// smaller saving; offloading moves the work off-platform entirely.  The
// metric triple (energy gain, worst detection staleness, filter
// engagements) quantifies the three-way trade-off the paper's section V
// opens but does not evaluate.
#include "common.hpp"
#include "sim/simulation.hpp"

int main() {
  using namespace seo;
  bench::print_banner(
      "ablation_strategies",
      "extends paper section V (Omega methods)",
      "filtered, 3 obstacles, tau=20 ms; identical deadline streams per "
      "mode");

  TextTable table("Optimization methods under identical safety deadlines");
  table.set_header({"method", "combined gain", "p=tau gain",
                    "worst staleness [ms]", "engagements/run",
                    "collided"});

  for (const auto mode :
       {OptimizerMode::kNone, OptimizerMode::kGating, OptimizerMode::kScaled,
        OptimizerMode::kOffload}) {
    const ScenarioConfig config = bench::scenario(mode, /*filtered=*/true, 3);
    const ExperimentResult r = bench::run(config);

    // Staleness from a traced single episode (representative seed).
    ScenarioConfig traced = config;
    traced.seed = bench::kBaseSeed;
    EpisodeTrace trace;
    (void)run_episode(traced, &trace);

    table.add_row({
        to_string(mode),
        fmt_percent(bench::combined_gain(r, config.platform)),
        fmt_percent(bench::pipeline_gain(r, 0, config.platform)),
        fmt_double(trace.max_detection_age() * 1e3, 0),
        fmt_double(static_cast<double>(r.filter_engagements) /
                       std::max(r.episodes_used, 1), 1),
        std::to_string(r.collisions),
    });
  }
  std::cout << table.render() << "\n";
  std::cout << "Expected: offloading > gating > scaled > local in energy; "
               "scaled beats gating on\nstaleness (fresh low-fidelity "
               "outputs every frame); all methods equally safe.\n";
  return 0;
}
