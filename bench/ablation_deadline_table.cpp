// Ablation A1: lookup-table fidelity and cost.
//
// The paper replaces runtime evaluation of the safe-interval map phi with a
// precomputed lookup table T(x,u) (section IV-C).  This ablation quantifies
// (a) the interpolation error of T against the exact closed-form
// certificate across grid resolutions, and (b) the conservatism of the
// Lipschitz certificate against the numerical rollout phi of eq. (3).
#include <chrono>

#include "common.hpp"
#include "safety/deadline_table.hpp"

int main() {
  using namespace seo;
  bench::print_banner(
      "ablation_deadline_table", "design choice: T(x,u) proxy (paper IV-C)",
      "interpolation error + probe cost vs. grid resolution; certificate "
      "conservatism vs. rollout phi");

  const Barrier barrier{BarrierConfig{}};
  const LipschitzSafeInterval exact(LipschitzIntervalConfig{}, barrier);

  TextTable table("Lookup-table resolution vs. exact certificate");
  table.set_header({"grid (d x chi x v)", "cells", "max |err| [ms]",
                    "mean |err| [ms]", "probe [ns]", "build [ms]"});

  Rng rng(99);
  for (const int res : {6, 11, 21, 41, 81}) {
    DeadlineTableConfig tc;
    tc.distance_bins = res;
    tc.bearing_bins = res;
    tc.speed_bins = std::max(res / 4, 3);

    const auto t0 = std::chrono::steady_clock::now();
    const DeadlineTable table_proxy(tc, exact, BarrierConfig{}.body_radius);
    const auto t1 = std::chrono::steady_clock::now();

    // Random probes inside the domain, compared to the exact evaluator on a
    // reconstructed virtual obstacle.
    double max_err = 0.0, sum_err = 0.0;
    const int probes = 20000;
    for (int i = 0; i < probes; ++i) {
      const double d = rng.uniform(0.2, tc.max_distance - 0.2);
      const double chi = rng.uniform(-3.0, 3.0);
      const double v = rng.uniform(0.2, tc.max_speed - 0.2);
      VehicleState s;
      s.speed = v;
      const Obstacle o{Vec2::from_polar(
                           d + tc.obstacle_radius + BarrierConfig{}.body_radius,
                           chi),
                       tc.obstacle_radius};
      const ObstacleField field({o});
      const double truth = exact.evaluate(s, Control{}, field).delta_max_s;
      const double approx = table_proxy.sample(d, chi, v);
      const double err = std::abs(truth - approx);
      max_err = std::max(max_err, err);
      sum_err += err;
    }

    // Probe latency.
    const auto t2 = std::chrono::steady_clock::now();
    volatile double sink = 0.0;
    const int timing_probes = 200000;
    for (int i = 0; i < timing_probes; ++i)
      sink = sink + table_proxy.sample(12.0 + (i % 7), 0.3, 8.0);
    const auto t3 = std::chrono::steady_clock::now();

    const double build_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double probe_ns =
        std::chrono::duration<double, std::nano>(t3 - t2).count() /
        timing_probes;
    table.add_row({std::to_string(res) + "x" + std::to_string(res) + "x" +
                       std::to_string(tc.speed_bins),
                   std::to_string(table_proxy.cell_count()),
                   fmt_double(max_err * 1e3, 3), fmt_double(sum_err / probes * 1e3, 3),
                   fmt_double(probe_ns, 0), fmt_double(build_ms, 1)});
  }
  std::cout << table.render() << "\n";

  // Certificate conservatism: Lipschitz bound vs. rollout phi.
  const RolloutSafeInterval rollout(RolloutIntervalConfig{}, BicycleModel{},
                                    barrier);
  TextTable cons("Certificate conservatism: Delta_max(Lipschitz) vs. rollout "
                 "phi (head-on approach, v = 8.5 m/s)");
  cons.set_header({"clearance d [m]", "Lipschitz [ms]", "rollout [ms]",
                   "ratio"});
  for (const double d : {3.0, 5.0, 8.0, 12.0, 20.0, 30.0}) {
    VehicleState s;
    s.speed = 8.5;
    const Obstacle o{Vec2{d + 0.8 + 0.9, 0.0}, 0.8};
    const ObstacleField field({o});
    const double lip = exact.evaluate(s, Control{}, field).delta_max_s;
    const double rol =
        rollout.evaluate(s, Control{0.0, 0.3}, field).delta_max_s;
    cons.add_row({fmt_double(d, 1), fmt_double(lip * 1e3, 1),
                  fmt_double(rol * 1e3, 1),
                  fmt_double(rol > 0 ? lip / rol : 0.0, 3)});
  }
  std::cout << cons.render() << "\n";
  std::cout << "Expected: interpolation error shrinks with resolution while "
               "probe cost stays flat\n(table probing is O(1)); the "
               "certificate is strictly more conservative than the\nrollout "
               "(ratio < 1), which is the price of control-independence.\n";
  return 0;
}
