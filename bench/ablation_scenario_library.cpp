// Ablation A8: the scenario library end to end.
//
// The paper evaluates a handful of fixed rigs; the library spans the wider
// workload space the framework claims to cover.  This ablation runs every
// library scenario at full episode count and reports the safety and energy
// envelope per rig — the expectation is that the formal deadline mechanism
// holds (zero collisions with the filter on) across ALL of them, while the
// achievable energy gain varies widely with workload.
#include "common.hpp"

#include "sim/scenario_library.hpp"

int main() {
  using namespace seo;
  bench::print_banner(
      "ablation_scenario_library", "scope: paper VI-A generalized",
      "every library rig, " + std::to_string(bench::kEpisodes) +
          " episodes each, aggregated failures included");

  TextTable table("Scenario library envelope");
  table.set_header({"scenario", "mode", "combined gain", "avg delta_max",
                    "avg speed", "min h [m]", "engages", "collided",
                    "off-road", "timeout"});

  for (const auto& entry : scenario_library()) {
    ExperimentConfig config;
    config.scenario = entry.make();
    config.episodes = bench::kEpisodes;
    config.max_attempts = bench::kEpisodes * 4;
    config.base_seed = bench::kBaseSeed;
    config.require_success = false;
    config.threads = bench::experiment_threads();
    const ExperimentResult r = run_experiment(config);

    table.add_row({
        entry.name,
        to_string(config.scenario.mode),
        fmt_percent(bench::combined_gain(r, config.scenario.platform)),
        fmt_double(r.mean_delta_max(), 2),
        fmt_double(r.avg_speed.mean(), 2),
        fmt_double(r.min_h.empty() ? 0.0 : r.min_h.mean(), 2),
        std::to_string(r.filter_engagements),
        std::to_string(r.collisions),
        std::to_string(r.off_roads),
        std::to_string(r.timeouts),
    });
  }
  std::cout << table.render() << "\n";
  std::cout << "Expected: zero collisions on every filtered rig "
               "(unfiltered_baseline is the\nexception that motivates the "
               "filter); gains track how often each workload's\ndeadline "
               "admits optimization.\n";
  return 0;
}
