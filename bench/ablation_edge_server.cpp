// Ablation A8: edge-server capacity — queueing effects on offloading.
//
// With an explicit server model, burst arrivals (both detectors offloading
// in the same base period) serialize on the inference workers.  Scarce
// capacity inflates response times past delta-hat, triggering fallbacks
// and admission shedding; the guarantee is preserved, the energy gain is
// not.
#include "common.hpp"

int main() {
  using namespace seo;
  bench::print_banner(
      "ablation_edge_server", "extends paper V-A (server response times)",
      "offload mode, filtered, 2 obstacles; server service time and worker "
      "count swept");

  TextTable table("Offloading vs. edge-server capacity");
  table.set_header({"service [ms]", "workers", "combined gain", "applied",
                    "fallbacks", "collided"});

  struct ServerCase {
    double service_ms;
    int workers;
  };
  const ServerCase cases[] = {
      {3.0, 4}, {5.0, 2}, {5.0, 1}, {10.0, 2}, {10.0, 1}, {16.0, 1},
  };

  for (const auto& sc : cases) {
    ScenarioConfig config =
        bench::scenario(OptimizerMode::kOffload, /*filtered=*/true, 2);
    config.use_edge_server = true;
    config.edge_server.service_time_s = sc.service_ms * 1e-3;
    config.edge_server.parallelism = sc.workers;
    config.edge_server.queue_capacity = 8;
    const ExperimentResult r = bench::run(config);

    std::uint64_t applied = 0, fallbacks = 0;
    for (const auto& p : r.pipelines) {
      applied += p.offload_applied;
      fallbacks += p.offload_fallbacks;
    }
    table.add_row({
        fmt_double(sc.service_ms, 0),
        std::to_string(sc.workers),
        fmt_percent(bench::combined_gain(r, config.platform)),
        std::to_string(applied),
        std::to_string(fallbacks),
        std::to_string(r.collisions),
    });
  }
  std::cout << table.render() << "\n";
  std::cout << "Expected: gains degrade gracefully as the server gets "
               "slower/narrower; fallbacks\nabsorb the misses; zero "
               "collisions at every capacity.\n";
  return 0;
}
