// Ablation A2: wireless channel quality sweep.
//
// The paper fixes the Rayleigh scale at 20 Mbps.  This ablation sweeps the
// scale to show how offloading gains, feasibility and the safety fallback
// rate respond to channel quality — and that the safety guarantee holds
// even on a bad channel (fallbacks absorb late responses; deadlines are
// never missed, only energy is lost).
#include "common.hpp"

int main() {
  using namespace seo;
  bench::print_banner(
      "ablation_channel", "design choice: Rayleigh channel (paper VI-A)",
      "offload mode, filtered, 2 obstacles, tau=20 ms; Rayleigh scale swept "
      "5..80 Mbps");

  TextTable table("Offloading vs. channel quality");
  table.set_header({"scale [Mbps]", "combined gain", "p=tau gain",
                    "offloads", "applied", "fallbacks", "fallback rate",
                    "collided"});

  for (const double scale : {5.0, 10.0, 15.0, 20.0, 30.0, 50.0, 80.0}) {
    ScenarioConfig config =
        bench::scenario(OptimizerMode::kOffload, /*filtered=*/true, 2);
    config.channel_scale_mbps = scale;
    ExperimentConfig ec;
    ec.scenario = config;
    ec.episodes = bench::kEpisodes;
    ec.base_seed = bench::kBaseSeed;
    const ExperimentResult r = run_experiment(ec);

    std::uint64_t submitted = 0, applied = 0, fallbacks = 0;
    for (const auto& p : r.pipelines) {
      submitted += p.offload_submitted;
      applied += p.offload_applied;
      fallbacks += p.offload_fallbacks;
    }
    const double fb_rate =
        applied + fallbacks > 0
            ? static_cast<double>(fallbacks) /
                  static_cast<double>(applied + fallbacks)
            : 0.0;
    table.add_row({fmt_double(scale, 0),
                   fmt_percent(bench::combined_gain(r, config.platform)),
                   fmt_percent(bench::pipeline_gain(r, 0, config.platform)),
                   std::to_string(submitted), std::to_string(applied),
                   std::to_string(fallbacks), fmt_percent(fb_rate),
                   std::to_string(r.collisions)});
  }
  std::cout << table.render() << "\n";
  std::cout << "Expected: gains grow and saturate with channel quality; "
               "fallback rate decays;\nzero collisions at every scale — the "
               "deadline guarantee is channel-independent.\n";
  return 0;
}
