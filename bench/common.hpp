// Shared helpers for the bench harness binaries.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "energy/report.hpp"
#include "sim/experiment.hpp"
#include "util/table.hpp"

namespace seo::bench {

/// Number of successful episodes each experiment aggregates (paper: "the
/// average from 25 test runs in which the agent successfully completed the
/// route").
inline constexpr int kEpisodes = 25;
inline constexpr std::uint64_t kBaseSeed = 7000;

/// Episode parallelism for the ablation harness: SEO_THREADS env override,
/// else every hardware thread.  Safe because the batched engine reproduces
/// the serial aggregate exactly (see tests/test_thread_pool.cpp).
inline int experiment_threads() {
  if (const char* env = std::getenv("SEO_THREADS")) return std::atoi(env);
  return 0;  // 0 = all hardware threads
}

/// Runs the standard experiment for a scenario.
inline ExperimentResult run(const ScenarioConfig& scenario,
                            int episodes = kEpisodes,
                            std::uint64_t base_seed = kBaseSeed) {
  ExperimentConfig config;
  config.scenario = scenario;
  config.episodes = episodes;
  config.base_seed = base_seed;
  config.threads = experiment_threads();
  return run_experiment(config);
}

/// Scenario with the given mode/filtering/risk on the default rig.
inline ScenarioConfig scenario(OptimizerMode mode, bool filtered,
                               int obstacles, double tau_s = 0.02) {
  ScenarioConfig config = default_scenario(tau_s);
  config.mode = mode;
  config.filtered = filtered;
  config.obstacle_count = obstacles;
  return config;
}

/// Model-only gain of pipeline `i` (Fig. 5 / Tables I-II metric).
inline double pipeline_gain(const ExperimentResult& r, std::size_t i,
                            const PlatformPowerModel& pm) {
  return r.pipeline_model_energy(i, pm).gain();
}

inline double combined_gain(const ExperimentResult& r,
                            const PlatformPowerModel& pm) {
  return r.combined_model_energy(pm).gain();
}

/// Header line every bench prints so outputs are self-describing.
inline void print_banner(const std::string& id, const std::string& paper_ref,
                         const std::string& setup) {
  std::cout << "=== " << id << " — reproduces " << paper_ref << " ===\n"
            << "setup: " << setup << "\n\n";
}

}  // namespace seo::bench
