// Table III: sensor gating at tau = 20 ms for the filtered control case —
// the broader energy model of eq. (8) including the sensor itself.  Three
// industry-grade sensors (ZED stereo camera, Navtech CTS350-X radar,
// Velodyne HDL-32e LiDAR) are evaluated at p = tau and p = 2*tau, reporting
// average gains over the run and gains within delta_max = 4*tau intervals.
//
// The schedule is sensor-independent (it depends only on p and delta_max),
// so one filtered gating run per period supplies the tallies and each
// sensor spec is evaluated analytically from them — the paper's Table III
// methodology.
#include "common.hpp"

int main() {
  using namespace seo;
  bench::print_banner(
      "table3_sensor_gating", "paper Table III",
      "filtered gating at tau=20 ms; eq. (8) sensor+model energy; sensors "
      "evaluated from the measured schedule tallies");

  const ScenarioConfig config =
      bench::scenario(OptimizerMode::kGating, /*filtered=*/true, 2);
  const ExperimentResult r = bench::run(config);
  const PerceptionModelSpec model = resnet152_px2();

  struct SensorCase {
    const char* label;
    SensorSpec (*make)(double);
  };
  const SensorCase sensors[] = {
      {"ZED Camera", &zed_stereo_camera},
      {"Navtech Radar", &navtech_cts350x_radar},
      {"Velod. LiDAR", &velodyne_hdl32e_lidar},
  };

  TextTable table("Sensor gating at tau = 20 ms, filtered control case");
  table.set_header({"sensor", "P_meas", "P_mech", "avg gains", "4tau gains"});

  for (const auto& sc : sensors) {
    for (std::size_t i = 0; i < r.pipelines.size(); ++i) {
      const auto& pipe = r.pipelines[i];
      const SensorSpec spec = sc.make(pipe.sensor.period_s);
      const EnergyComparison avg =
          sensor_gating_energy(pipe.tally, spec, model);
      const EnergyComparison at4 =
          sensor_gating_energy_at(pipe.tally, config.deadline_cap, spec, model);
      const std::string label = std::string(sc.label) + " (p=" +
                                (pipe.delta == 1 ? "tau" : "2tau") + ")";
      table.add_row({label, fmt_double(spec.meas_power_w, 1) + " W",
                     fmt_double(spec.mech_power_w, 1) + " W",
                     fmt_percent(avg.gain(), 2), fmt_percent(at4.gain(), 2)});
    }
  }

  std::cout << table.render() << "\n";
  std::cout
      << "Paper reference (Table III): camera 37.5/8.2% avg, 75/50% @4tau; "
         "radar 34.84/7.57%,\n68.93/45.53%; lidar 32.72/6.9%, 64.82/41.91%. "
         " The 4tau column is analytic in the\nsensor specs (eq. 8) and "
         "should match the paper almost exactly; expected ordering\ncamera > "
         "radar > lidar (mechanical rails resist gating).\n";
  return 0;
}
