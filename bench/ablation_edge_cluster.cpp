// Ablation A9: edge-cluster scale — dispatch policy, batching and
// contention under fleet load.
//
// The fleet experiment replays every vehicle's offload stream through a
// shared cluster.  Scarce servers push queueing delays past the freshness
// bound (deadline misses); batching trades per-request latency for
// throughput; the deadline-aware policy protects urgent requests when the
// rack saturates.
#include "common.hpp"

#include "sim/fleet_experiment.hpp"
#include "sim/scenario_library.hpp"

int main() {
  using namespace seo;
  bench::print_banner(
      "ablation_edge_cluster", "extends paper V-A to fleet scale",
      "fleet_cluster rig (6 vehicles, offload mode); cluster size, dispatch "
      "policy and batch window swept");

  TextTable table("Fleet offloading vs. cluster configuration");
  table.set_header({"servers", "dispatch", "window [ms]", "miss rate",
                    "mean resp [ms]", "mean batch", "util", "shed"});

  struct ClusterCase {
    int servers;
    DispatchPolicy dispatch;
    double window_ms;
  };
  const ClusterCase cases[] = {
      {4, DispatchPolicy::kLeastLoaded, 0.0},
      {4, DispatchPolicy::kLeastLoaded, 4.0},
      {4, DispatchPolicy::kRoundRobin, 4.0},
      {2, DispatchPolicy::kLeastLoaded, 4.0},
      {2, DispatchPolicy::kEarliestSlack, 4.0},
      {1, DispatchPolicy::kLeastLoaded, 4.0},
      {1, DispatchPolicy::kEarliestSlack, 8.0},
  };

  for (const auto& cc : cases) {
    FleetExperimentConfig config;
    config.scenario = make_scenario("fleet_cluster");
    config.scenario.cluster.servers = cc.servers;
    config.scenario.cluster.dispatch = cc.dispatch;
    config.scenario.cluster.batch_window_s = cc.window_ms * 1e-3;
    config.rounds = 3;
    config.base_seed = bench::kBaseSeed;
    config.threads = bench::experiment_threads();
    const FleetResult r = run_fleet_experiment(config);

    table.add_row({
        std::to_string(cc.servers),
        to_string(cc.dispatch),
        fmt_double(cc.window_ms, 0),
        fmt_percent(r.miss_rate()),
        fmt_double(r.response_s.empty() ? 0.0 : r.response_s.mean() * 1e3, 2),
        fmt_double(r.cluster.mean_batch_size(), 2),
        fmt_percent(r.cluster.utilization()),
        std::to_string(r.shed()),
    });
  }
  std::cout << table.render() << "\n";
  std::cout << "Expected: the default rig is channel-limited — batching "
               "trades ~6 ms of window\nwait for fewer, larger inferences; "
               "cluster size barely moves the miss rate.\n\n";

  // The saturated rig flips the bottleneck to the rack: 10 vehicles on few
  // slow single-worker servers, where dispatch policy and capacity decide
  // who queues, who sheds and who misses.
  TextTable saturated("Saturated rack (fleet_cluster_saturated, 10 vehicles)");
  saturated.set_header({"servers", "dispatch", "miss rate", "mean resp [ms]",
                        "max delay [ms]", "util", "shed"});
  const ClusterCase rack_cases[] = {
      {2, DispatchPolicy::kRoundRobin, 8.0},
      {2, DispatchPolicy::kLeastLoaded, 8.0},
      {2, DispatchPolicy::kEarliestSlack, 8.0},
      {4, DispatchPolicy::kLeastLoaded, 8.0},
      {6, DispatchPolicy::kLeastLoaded, 8.0},
  };
  for (const auto& cc : rack_cases) {
    FleetExperimentConfig config;
    config.scenario = make_scenario("fleet_cluster_saturated");
    config.scenario.cluster.servers = cc.servers;
    config.scenario.cluster.dispatch = cc.dispatch;
    config.scenario.cluster.batch_window_s = cc.window_ms * 1e-3;
    config.rounds = 2;
    config.base_seed = bench::kBaseSeed;
    config.threads = bench::experiment_threads();
    const FleetResult r = run_fleet_experiment(config);
    saturated.add_row({
        std::to_string(cc.servers),
        to_string(cc.dispatch),
        fmt_percent(r.miss_rate()),
        fmt_double(r.response_s.empty() ? 0.0 : r.response_s.mean() * 1e3, 2),
        fmt_double(r.cluster.max_queue_delay_s * 1e3, 2),
        fmt_percent(r.cluster.utilization()),
        std::to_string(r.shed()),
    });
  }
  std::cout << saturated.render() << "\n";
  std::cout << "Expected: misses and shedding collapse as servers are added; "
               "at 2 servers the\ndeadline-aware policy trades a few extra "
               "sheds for lower response times.\n";
  return 0;
}
