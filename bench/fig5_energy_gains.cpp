// Figure 5: energy gains relative to local execution for the two
// ResNet-152 detectors (p = tau, p = 2*tau) when offloading (left) and
// model gating (right), in the unfiltered and filtered control cases, at
// tau = 20 ms.  Scenario: the paper's obstacle course "similar to the one
// proposed in [19]" — obstacles in the final third of a 100 m road.
#include "common.hpp"

int main() {
  using namespace seo;
  bench::print_banner(
      "fig5_energy_gains", "paper Fig. 5",
      "two ResNet-152 detectors (p=tau, p=2tau); tau=20 ms; 2 obstacles in "
      "final third; 25 successful runs per case");

  TextTable table("Energy gains relative to local execution (tau = 20 ms)");
  table.set_header({"method", "control", "p=tau gain", "p=2tau gain",
                    "avg delta_max"});

  struct Case {
    OptimizerMode mode;
    bool filtered;
  };
  const Case cases[] = {
      {OptimizerMode::kOffload, false},
      {OptimizerMode::kOffload, true},
      {OptimizerMode::kGating, false},
      {OptimizerMode::kGating, true},
  };

  for (const auto& c : cases) {
    const ScenarioConfig config = bench::scenario(c.mode, c.filtered, 2);
    const ExperimentResult r = bench::run(config);
    const auto& pm = config.platform;
    table.add_row({to_string(c.mode), c.filtered ? "filtered" : "unfiltered",
                   fmt_percent(bench::pipeline_gain(r, 0, pm)),
                   fmt_percent(bench::pipeline_gain(r, 1, pm)),
                   fmt_double(r.mean_delta_max(), 2)});
  }

  std::cout << table.render() << "\n";
  std::cout
      << "Paper reference points (Fig. 5): offloading filtered 65.9% (p=tau) "
         "/ 20.3% (p=2tau),\nunfiltered 24.1%; gating filtered 37.2% (p=tau) "
         "/ 8% (p=2tau).\nExpected shape: offloading > gating, p=tau > "
         "p=2tau, filtered >= unfiltered.\n";
  return 0;
}
