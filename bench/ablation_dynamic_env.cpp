// Ablation A7: dynamic environments — obstacles pacing across the road.
//
// Obstacle motion enters the formal certificate as an additive worst-case
// environment speed (DESIGN.md section 4 extension), so the same physical
// clearance yields smaller safe intervals.  This sweep quantifies how much
// optimization headroom dynamic scenes cost, and verifies the guarantee
// survives them.
#include "common.hpp"

int main() {
  using namespace seo;
  bench::print_banner(
      "ablation_dynamic_env", "extends paper (static obstacles only)",
      "filtered gating, 3 obstacles, tau=20 ms; lateral pacing amplitude "
      "swept (period 4 s)");

  TextTable table("Obstacle motion vs. deadlines and gains");
  table.set_header({"pacing amplitude [m]", "env speed bound [m/s]",
                    "avg delta_max", "gating gain", "offload gain",
                    "engagements/run", "collided", "off road"});

  for (const double amplitude : {0.0, 0.5, 1.0, 1.5, 2.0}) {
    ScenarioConfig gate = bench::scenario(OptimizerMode::kGating, true, 3);
    gate.moving_obstacles = amplitude > 0.0;
    gate.obstacle_osc_amplitude = amplitude;
    ScenarioConfig off = gate;
    off.mode = OptimizerMode::kOffload;

    const ExperimentResult rg = bench::run(gate);
    const ExperimentResult ro = bench::run(off);
    const double omega = 6.28318530717958647692 / gate.obstacle_osc_period;

    table.add_row({
        fmt_double(amplitude, 1),
        fmt_double(gate.moving_obstacles ? amplitude * omega : 0.0, 2),
        fmt_double(rg.mean_delta_max(), 2),
        fmt_percent(bench::combined_gain(rg, gate.platform)),
        fmt_percent(bench::combined_gain(ro, off.platform)),
        fmt_double(static_cast<double>(rg.filter_engagements) /
                       std::max(rg.episodes_used, 1), 1),
        std::to_string(rg.collisions + ro.collisions),
        std::to_string(rg.off_roads + ro.off_roads),
    });
  }
  std::cout << table.render() << "\n";
  std::cout << "Expected: faster obstacle motion -> tighter certificate -> "
               "smaller delta_max and\nlower gains, with the filter working "
               "progressively harder (engagements rise).\nNo collisions at "
               "any amplitude: evasions that would leave the road are the "
               "only\nfailure mode (off-road exits), i.e. the barrier "
               "guarantee itself holds.\n";
  return 0;
}
