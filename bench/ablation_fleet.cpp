// Ablation A9: fleet contention on a shared edge server.
//
// The paper evaluates one vehicle; real deployments share the roadside
// server.  This ablation drives K abstract SEO clients (each a SeoRuntime
// with two detector pipelines and its own Rayleigh channel) against ONE
// EdgeServer, lock-stepped on the 20 ms base period, and measures how
// round trips inflate and remote-apply rates collapse as the fleet grows.
// Built entirely on the public core/net APIs — no simulator world needed.
#include <memory>
#include <vector>

#include "common.hpp"
#include "core/runtime.hpp"
#include "net/channel.hpp"
#include "net/offload_link.hpp"
#include "net/response_estimator.hpp"
#include "util/units.hpp"

namespace {

using namespace seo;

constexpr double kTau = 0.02;
constexpr int kCap = 4;
constexpr double kFrameBytes = 24.0 * 1024.0;

/// One abstract vehicle: runtime + link + estimators + freshness state.
struct Client {
  std::unique_ptr<SeoRuntime> runtime;
  std::unique_ptr<OffloadLink> link;
  std::vector<ResponseEstimator> estimators;
  std::vector<double> last_arrival;
  std::vector<double> last_frame_time;
  double now = 0.0;
  double interval_start = 0.0;
  std::uint64_t applied = 0, fallbacks = 0, submitted = 0;
};

}  // namespace

int main() {
  bench::print_banner(
      "ablation_fleet", "extends paper V-A to shared infrastructure",
      "K clients x 2 pipelines, one EdgeServer (2 workers, 5 ms service), "
      "unconstrained streaming, 30 s lock-step at tau=20 ms");

  TextTable table("Offloading vs. fleet size on one shared edge server");
  table.set_header({"clients", "submitted", "applied", "fallbacks",
                    "apply rate", "server shed", "max queue delay [ms]"});

  for (const int fleet : {1, 2, 4, 8, 16}) {
    EdgeServer server(EdgeServerParams{0.005, 2, 16});
    RayleighChannel channel(units::mbps(20.0));
    Rng master(4242);

    std::vector<Client> clients(static_cast<std::size_t>(fleet));
    for (auto& client : clients) {
      client.link = std::make_unique<OffloadLink>(
          OffloadLinkParams{}, channel, master.split(), &server);
      client.estimators.assign(2, ResponseEstimator(0.016));
      client.last_arrival.assign(2, -1.0);
      client.last_frame_time.assign(2, -1.0);

      Client* self = &client;
      SeoRuntime::Hooks hooks;
      hooks.sample_deadline = [] { return DeadlineSample{false, 0.0}; };
      hooks.on_interval_start = [self] {
        self->interval_start = self->now;
      };
      hooks.estimate_periods = [self](std::size_t i) {
        return self->estimators[i].estimate_periods(kTau);
      };
      hooks.remote_fresh = [self](std::size_t i) {
        return self->last_arrival[i] >= self->interval_start &&
               self->now - self->last_frame_time[i] <= kCap * kTau;
      };
      client.runtime = std::make_unique<SeoRuntime>(
          SeoRuntime::Config{TimeBase(kTau), kCap, {1, 2}},
          std::make_unique<OffloadStrategy>(), std::move(hooks));
    }

    const int ticks = static_cast<int>(30.0 / kTau);
    for (int t = 0; t < ticks; ++t) {
      const double now = t * kTau;
      for (auto& client : clients) {
        client.now = now;
        for (const auto& arrival : client.link->collect_arrivals(now)) {
          client.estimators[arrival.pipeline].observe(
              arrival.response_time - arrival.submit_time);
          client.last_arrival[arrival.pipeline] = arrival.response_time;
          client.last_frame_time[arrival.pipeline] = arrival.frame_time;
        }
        const auto report = client.runtime->tick();
        for (const auto& d : report.directives) {
          double tx_j = 0.0;
          if (d.action == FrameAction::kOffload ||
              d.action == FrameAction::kApplyRemote) {
            const auto tx =
                client.link->submit(d.pipeline, kFrameBytes, now, now);
            tx_j = tx.tx_time_s * 1.3;
            ++client.submitted;
          }
          client.runtime->record(d, tx_j);
        }
      }
    }

    std::uint64_t submitted = 0, applied = 0, fallbacks = 0;
    for (auto& client : clients) {
      submitted += client.submitted;
      for (std::size_t i = 0; i < 2; ++i) {
        applied += client.runtime->remote_applied(i);
        fallbacks += client.runtime->fallbacks(i);
      }
    }
    const double apply_rate =
        applied + fallbacks > 0
            ? static_cast<double>(applied) /
                  static_cast<double>(applied + fallbacks)
            : 0.0;
    table.add_row({std::to_string(fleet), std::to_string(submitted),
                   std::to_string(applied), std::to_string(fallbacks),
                   fmt_percent(apply_rate), std::to_string(server.rejected()),
                   fmt_double(server.max_queue_delay() * 1e3, 1)});
  }

  std::cout << table.render() << "\n";
  std::cout << "Expected: apply rate stays high while server capacity "
               "absorbs the fleet, then\ncollapses as queueing delay "
               "crosses the freshness window and shedding begins —\nevery "
               "miss lands as a local fallback, never a deadline breach.\n";
  return 0;
}
