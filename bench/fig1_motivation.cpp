// Figure 1 (motivational example): normalized ADS energy consumption of
// two object detectors (50 Hz and 25 Hz) under SEO's safety-aware gating,
// across test runs with different numbers of obstacles.  Full operation
// (always-local) is the 1.0 reference; higher perceived risk (more
// obstacles) pulls the safe dynamic deadline down and normalized energy up.
#include "common.hpp"

int main() {
  using namespace seo;
  bench::print_banner(
      "fig1_motivation", "paper Fig. 1",
      "safety-aware gating; 50 Hz (p=tau) and 25 Hz (p=2tau) ResNet-152 "
      "detectors; tau=20 ms; unfiltered control; obstacles 0..6");

  TextTable table("Normalized energy vs. full operation (1.0)");
  table.set_header({"#obstacles", "50 Hz model", "25 Hz model", "combined",
                    "avg delta_max"});

  std::vector<std::pair<std::string, double>> series_fast;
  std::vector<std::pair<std::string, double>> series_slow;

  for (int obstacles = 0; obstacles <= 6; ++obstacles) {
    const ScenarioConfig config =
        bench::scenario(OptimizerMode::kGating, /*filtered=*/false, obstacles);
    const ExperimentResult r = bench::run(config);
    const auto& pm = config.platform;
    const double fast = r.pipeline_model_energy(0, pm).normalized();
    const double slow = r.pipeline_model_energy(1, pm).normalized();
    table.add_row({std::to_string(obstacles), fmt_double(fast, 3),
                   fmt_double(slow, 3),
                   fmt_double(r.combined_model_energy(pm).normalized(), 3),
                   fmt_double(r.mean_delta_max(), 2)});
    series_fast.emplace_back("obst=" + std::to_string(obstacles), fast);
    series_slow.emplace_back("obst=" + std::to_string(obstacles), slow);
  }

  std::cout << table.render() << "\n";
  std::cout << "50 Hz model, normalized energy (increasing risk ->)\n"
            << render_bar_chart(series_fast) << "\n";
  std::cout << "25 Hz model, normalized energy (increasing risk ->)\n"
            << render_bar_chart(series_slow) << "\n";
  std::cout << "Expected shape (paper Fig. 1): normalized energy rises with "
               "risk; the faster\nmodel gains more headroom at low risk.\n";
  return 0;
}
