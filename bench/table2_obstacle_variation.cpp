// Table II: average energy gains and delta_max at tau = 20 ms under
// obstacle variation for the two combined (p=tau) and (p=2tau) models, in
// both the unfiltered and filtered control cases.
#include "common.hpp"

int main() {
  using namespace seo;
  bench::print_banner(
      "table2_obstacle_variation", "paper Table II",
      "tau=20 ms; obstacles in {0, 2, 4}; combined gains over both "
      "detectors; 25 successful runs per cell");

  TextTable table(
      "Average energy gains and delta_max at tau = 20 ms under obstacle "
      "variation");
  table.set_header({"control", "#obst", "offloading gains", "gating gains",
                    "delta_max"});

  for (const bool filtered : {false, true}) {
    for (const int obstacles : {0, 2, 4}) {
      const ScenarioConfig off_config =
          bench::scenario(OptimizerMode::kOffload, filtered, obstacles);
      const ExperimentResult off = bench::run(off_config);
      const ScenarioConfig gate_config =
          bench::scenario(OptimizerMode::kGating, filtered, obstacles);
      const ExperimentResult gate = bench::run(gate_config);

      table.add_row({filtered ? "filtered" : "unfiltered",
                     std::to_string(obstacles),
                     fmt_percent(bench::combined_gain(off,
                                                      off_config.platform), 2),
                     fmt_percent(bench::combined_gain(gate,
                                                      gate_config.platform), 2),
                     fmt_double(gate.mean_delta_max(), 2)});
    }
  }

  std::cout << table.render() << "\n";
  std::cout
      << "Paper reference (Table II):\n"
         "  unfiltered: 88.58/42.92% @3.67, 24.6/17.47% @2.29, "
         "16.82/11.89% @1.92\n"
         "  filtered:   89.89/43.82% @3.70, 39.49/24.26% @2.61, "
         "43.1/22.57% @2.53\n"
         "Expected shape: gains and delta_max fall with obstacle count; "
         "filtered >= unfiltered;\nfiltered case saturates for >= 2 "
         "obstacles.\n";
  return 0;
}
