// Table I: offloading and gating energy gains over local execution at
// tau = 25 ms (the paper's "more limited hardware settings" case).
#include "common.hpp"

int main() {
  using namespace seo;
  bench::print_banner(
      "table1_tau25", "paper Table I",
      "same rig as Fig. 5 but tau=25 ms; sensors at p=tau and p=2tau");

  TextTable table(
      "Offloading and gating energy gains over local at tau = 25 ms");
  table.set_header({"mode", "control", "(p=tau) gains", "(p=2tau) gains",
                    "average gains"});

  for (const auto mode : {OptimizerMode::kOffload, OptimizerMode::kGating}) {
    for (const bool filtered : {false, true}) {
      const ScenarioConfig config =
          bench::scenario(mode, filtered, 2, /*tau_s=*/0.025);
      const ExperimentResult r = bench::run(config);
      const auto& pm = config.platform;
      const double g0 = bench::pipeline_gain(r, 0, pm);
      const double g1 = bench::pipeline_gain(r, 1, pm);
      table.add_row({to_string(mode), filtered ? "filtered" : "unfiltered",
                     fmt_percent(g0), fmt_percent(g1),
                     fmt_percent(0.5 * (g0 + g1))});
    }
  }

  std::cout << table.render() << "\n";
  std::cout << "Paper reference (Table I): offload unfiltered 15.3/7.5/11.8%, "
               "filtered 27.1/14.1/21.1%;\ngating unfiltered 13.4/0/6.6%, "
               "filtered 23.8/4.3/14.5%.\nExpected shape: gains shrink vs. "
               "tau=20 ms; gating p=2tau collapses toward 0.\n";
  return 0;
}
