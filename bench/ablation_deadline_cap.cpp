// Ablation A4: deadline-cap sweep.
//
// SEO clamps delta_max to a cap (the paper's observed domain is 1..4).
// The cap bounds worst-case output staleness in unconstrained stretches;
// raising it buys more gating/offload headroom at the cost of staler
// detector outputs.  This quantifies that trade-off.
#include "common.hpp"

int main() {
  using namespace seo;
  bench::print_banner(
      "ablation_deadline_cap", "design choice: delta_max cap (paper Fig. 6 "
      "domain)",
      "filtered, 2 obstacles, tau=20 ms; cap swept 2..8");

  TextTable table("Energy gains vs. deadline cap");
  table.set_header({"cap", "gating combined", "offload combined",
                    "avg delta_max", "worst staleness [ms]", "collided"});

  for (const int cap : {2, 3, 4, 6, 8}) {
    ScenarioConfig gate_config =
        bench::scenario(OptimizerMode::kGating, /*filtered=*/true, 2);
    gate_config.deadline_cap = cap;
    ScenarioConfig off_config =
        bench::scenario(OptimizerMode::kOffload, /*filtered=*/true, 2);
    off_config.deadline_cap = cap;
    const ExperimentResult gate = bench::run(gate_config);
    const ExperimentResult off = bench::run(off_config);
    table.add_row(
        {std::to_string(cap),
         fmt_percent(bench::combined_gain(gate, gate_config.platform)),
         fmt_percent(bench::combined_gain(off, off_config.platform)),
         fmt_double(gate.mean_delta_max(), 2),
         fmt_double(cap * gate_config.tau_s * 1e3, 0),
         std::to_string(gate.collisions + off.collisions)});
  }
  std::cout << table.render() << "\n";
  std::cout << "Expected: gains grow with the cap (more headroom in "
               "low-risk stretches) while\nworst-case staleness grows "
               "linearly; safety is preserved at every cap because\n"
               "constrained intervals are bounded by the formal deadline, "
               "not the cap.\n";
  return 0;
}
