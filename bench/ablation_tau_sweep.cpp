// Ablation A3: base-period sweep (generalizes paper Table I).
//
// tau trades scheduling granularity against deadline resolution: eq. (5)
// floors Delta_max/tau, so a coarser tau discards more of each safety
// interval, shrinking optimization headroom — the paper demonstrates the
// single point tau=25 ms; this sweeps 10..50 ms.
#include "common.hpp"

int main() {
  using namespace seo;
  bench::print_banner("ablation_tau_sweep",
                      "generalizes paper Table I (tau=25 ms point)",
                      "filtered, 2 obstacles; sensor periods scale with tau "
                      "(p=tau, p=2tau); 17 ms model latency fixed");

  TextTable table("Energy gains vs. base period tau");
  table.set_header({"tau [ms]", "gating p=tau", "gating p=2tau",
                    "offload p=tau", "offload p=2tau", "avg delta_max"});

  for (const double tau_ms : {20.0, 25.0, 30.0, 40.0, 50.0}) {
    // tau must fit the 17 ms ResNet-152 latency (schedulability).
    const ScenarioConfig gate_config = bench::scenario(
        OptimizerMode::kGating, /*filtered=*/true, 2, tau_ms * 1e-3);
    const ScenarioConfig off_config = bench::scenario(
        OptimizerMode::kOffload, /*filtered=*/true, 2, tau_ms * 1e-3);
    const ExperimentResult gate = bench::run(gate_config);
    const ExperimentResult off = bench::run(off_config);
    table.add_row({fmt_double(tau_ms, 0),
                   fmt_percent(bench::pipeline_gain(gate, 0,
                                                    gate_config.platform)),
                   fmt_percent(bench::pipeline_gain(gate, 1,
                                                    gate_config.platform)),
                   fmt_percent(bench::pipeline_gain(off, 0,
                                                    off_config.platform)),
                   fmt_percent(bench::pipeline_gain(off, 1,
                                                    off_config.platform)),
                   fmt_double(gate.mean_delta_max(), 2)});
  }
  std::cout << table.render() << "\n";
  std::cout << "Expected: gains shrink monotonically as tau coarsens "
               "(deadline floor discards\nmore headroom); the p=2tau "
               "pipeline collapses first.\n";
  return 0;
}
