// Figure 6: histogram of the sampled discretized deadlines delta_max in the
// unfiltered control case when varying the number of obstacles, for
// offloading (left) and model gating (right), with the average energy
// efficiency over the two detectors annotated per risk level.
#include "common.hpp"

int main() {
  using namespace seo;
  bench::print_banner(
      "fig6_deadline_histogram", "paper Fig. 6",
      "unfiltered control; tau=20 ms; obstacles in {0, 2, 4}; histogram of "
      "sampled delta_max per interval");

  for (const auto mode : {OptimizerMode::kOffload, OptimizerMode::kGating}) {
    std::cout << "--- " << to_string(mode) << " ---\n";
    for (const int obstacles : {0, 2, 4}) {
      const ScenarioConfig config =
          bench::scenario(mode, /*filtered=*/false, obstacles);
      const ExperimentResult r = bench::run(config);
      const auto& pm = config.platform;

      std::vector<std::pair<std::string, double>> freq;
      for (int d = 1; d <= config.deadline_cap; ++d)
        freq.emplace_back("delta_max=" + std::to_string(d),
                          r.deadline_hist.frequency(d));
      std::cout << "#obstacles=" << obstacles << "  avg efficiency="
                << fmt_percent(bench::combined_gain(r, pm))
                << "  avg delta_max=" << fmt_double(r.mean_delta_max(), 2)
                << "\n"
                << render_bar_chart(freq) << "\n";
    }
  }
  std::cout
      << "Paper reference (Fig. 6): delta_max=4 frequency falls as obstacles "
         "increase\n(33.3% -> 6.48% -> 2.3% for gating); avg efficiency "
         "88.6/24.6/16.8% (offload),\n42.9/17.5/11.9% (gating).  Expected "
         "shape: histogram mass shifts to lower\ndelta_max with more "
         "obstacles; efficiency drops accordingly.\n";
  return 0;
}
