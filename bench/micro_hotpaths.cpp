// Ablation A5: microbenchmarks of the runtime hot paths (google-benchmark).
//
// The lookup-table probe is the operation Algorithm 1 performs at every
// interval start on the real-time control path; the paper's argument for
// T(x,u) is precisely that probing is cheap relative to evaluating phi.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>
#include <string_view>

#include "control/hybrid_policy.hpp"
#include "control/neural_policy.hpp"
#include "core/binary_io.hpp"
#include "dynamics/bicycle.hpp"
#include "nn/cem.hpp"
#include "nn/mlp.hpp"
#include "nn/weights_store.hpp"
#include "safety/deadline_table.hpp"
#include "safety/safe_interval.hpp"
#include "safety/safety_filter.hpp"
#include "safety/table_cache.hpp"
#include "sensors/detector.hpp"
#include "sim/experiment.hpp"
#include "sim/simulation.hpp"
#include "sim/sweep.hpp"
#include "sim/trace.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace seo;

ObstacleField test_field() {
  return ObstacleField({Obstacle{{20.0, 1.0}, 0.8},
                        Obstacle{{32.0, -1.2}, 0.8},
                        Obstacle{{45.0, 0.5}, 0.8}});
}

VehicleState test_state() {
  VehicleState s;
  s.position = {10.0, 0.2};
  s.heading = 0.05;
  s.speed = 8.5;
  return s;
}

void BM_BicycleStepRk4(benchmark::State& state) {
  const BicycleModel model;
  VehicleState s = test_state();
  const Control u{0.1, 0.4};
  for (auto _ : state) {
    s = model.step(s, u, 0.005);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_BicycleStepRk4);

void BM_BicycleStepEuler(benchmark::State& state) {
  const BicycleModel model;
  VehicleState s = test_state();
  const Control u{0.1, 0.4};
  for (auto _ : state) {
    s = model.step_euler(s, u, 0.005);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_BicycleStepEuler);

void BM_BarrierValue(benchmark::State& state) {
  const Barrier barrier{BarrierConfig{}};
  const ObstacleField field = test_field();
  const VehicleState s = test_state();
  for (auto _ : state) {
    benchmark::DoNotOptimize(barrier.value(s, field));
  }
}
BENCHMARK(BM_BarrierValue);

void BM_LipschitzInterval(benchmark::State& state) {
  const Barrier barrier{BarrierConfig{}};
  const LipschitzSafeInterval eval(LipschitzIntervalConfig{}, barrier);
  const ObstacleField field = test_field();
  const VehicleState s = test_state();
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.evaluate(s, Control{}, field));
  }
}
BENCHMARK(BM_LipschitzInterval);

void BM_RolloutInterval(benchmark::State& state) {
  const Barrier barrier{BarrierConfig{}};
  const RolloutSafeInterval eval(RolloutIntervalConfig{}, BicycleModel{},
                                 barrier);
  const ObstacleField field = test_field();
  const VehicleState s = test_state();
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.evaluate(s, Control{0.0, 0.3}, field));
  }
}
BENCHMARK(BM_RolloutInterval);

void BM_DeadlineTableProbe(benchmark::State& state) {
  const Barrier barrier{BarrierConfig{}};
  const LipschitzSafeInterval source(LipschitzIntervalConfig{}, barrier);
  const DeadlineTable table(DeadlineTableConfig{}, source,
                            BarrierConfig{}.body_radius);
  const ObstacleField field = test_field();
  const VehicleState s = test_state();
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.evaluate(s, Control{}, field));
  }
}
BENCHMARK(BM_DeadlineTableProbe);

void BM_SafetyFilterPass(benchmark::State& state) {
  const Barrier barrier{BarrierConfig{}};
  const SafetyFilter filter(SafetyFilterConfig{}, BicycleModel{}, barrier);
  const ObstacleField field = test_field();
  VehicleState s = test_state();
  s.position = {0.0, 0.0};  // far from obstacles: pass-through path
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.filter(s, field, Control{0.0, 0.4}));
  }
}
BENCHMARK(BM_SafetyFilterPass);

void BM_SafetyFilterEngaged(benchmark::State& state) {
  const Barrier barrier{BarrierConfig{}};
  const SafetyFilter filter(SafetyFilterConfig{}, BicycleModel{}, barrier);
  const ObstacleField field = test_field();
  VehicleState s = test_state();
  s.position = {16.5, 0.8};  // close + head-on: corrective search path
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.filter(s, field, Control{0.0, 0.4}));
  }
}
BENCHMARK(BM_SafetyFilterEngaged);

void BM_DetectorInference(benchmark::State& state) {
  SyntheticDetector detector(DetectorConfig{}, Rng(7));
  const ObstacleField field = test_field();
  const VehicleState s = test_state();
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.detect(s, field, 0.0));
  }
}
BENCHMARK(BM_DetectorInference);

void BM_MlpForward(benchmark::State& state) {
  Rng rng(11);
  NeuralPolicy policy(NeuralPolicyConfig{}, BicycleParams{}, rng);
  const nn::Vector input(NeuralPolicy::feature_count(), 0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.network().forward(input));
  }
}
BENCHMARK(BM_MlpForward);

void BM_MlpForwardWorkspace(benchmark::State& state) {
  Rng rng(11);
  NeuralPolicy policy(NeuralPolicyConfig{}, BicycleParams{}, rng);
  const nn::Vector input(NeuralPolicy::feature_count(), 0.3);
  nn::MlpWorkspace workspace;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.network().forward(input, workspace));
  }
}
BENCHMARK(BM_MlpForwardWorkspace);

// Batched inference: 64 samples through one forward_batch call vs 64
// single-sample passes.  Per-item time should beat the workspace loop
// (one layer sweep per layer instead of per sample) while staying
// bit-identical per row — the offline-evaluation path (mse_loss).
void BM_MlpForwardBatch(benchmark::State& state) {
  Rng rng(11);
  NeuralPolicy policy(NeuralPolicyConfig{}, BicycleParams{}, rng);
  constexpr std::size_t kBatch = 64;
  nn::Matrix inputs;
  inputs.resize(kBatch, NeuralPolicy::feature_count());
  for (std::size_t i = 0; i < kBatch; ++i)
    for (std::size_t c = 0; c < NeuralPolicy::feature_count(); ++c)
      inputs.at(i, c) = rng.uniform(-1.0, 1.0);
  nn::MlpBatchWorkspace workspace;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        policy.network().forward_batch(inputs, workspace));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatch));
}
BENCHMARK(BM_MlpForwardBatch);

// Threaded-vs-serial scaling of the two big offline artifacts.  The rigs
// are sized so per-item work dominates the fan-out overhead (a table large
// enough that slab builds take milliseconds; an episode batch deep enough
// that the wave engine's merge cost is noise) — with the wave-merge
// barrier, cache-probe lock and per-wave allocations gone, speedup on a
// multicore host is asserted, not just observed: the CI scaling gate
// (tools/bench_compare.py) requires threads:8 <= 0.6x threads:1 real time
// on machines with >= 4 cores.  The gate reads the JSON real_time field —
// CPU time only measures the calling thread.
void BM_DeadlineTableBuild(benchmark::State& state) {
  const Barrier barrier{BarrierConfig{}};
  const LipschitzSafeInterval source(LipschitzIntervalConfig{}, barrier);
  DeadlineTableConfig config;
  config.distance_bins = 81;
  config.bearing_bins = 49;
  config.speed_bins = 41;
  config.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const DeadlineTable table(config, source, BarrierConfig{}.body_radius);
    benchmark::DoNotOptimize(table.cell_count());
  }
}
BENCHMARK(BM_DeadlineTableBuild)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_ExperimentBatch(benchmark::State& state) {
  ExperimentConfig config;
  config.scenario = default_scenario();
  config.scenario.obstacle_count = 2;
  config.scenario.use_lookup_table = false;
  config.episodes = 32;
  config.max_attempts = 128;
  config.base_seed = 7000;
  config.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_experiment(config));
  }
}
BENCHMARK(BM_ExperimentBatch)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Process-level scaling of the distributed sweep: end-to-end wall time of
// `sweep --smoke --workers N` with single-threaded workers, so the worker
// fan-out is the only parallelism.  Every arm shells out to the real tool
// (workers:1 included) so spawn + pipe-merge overhead is inside the
// measurement on both sides of the ratio — the scaling gate
// (tools/bench_compare.py) requires workers:4 <= 0.6x workers:1 real time
// on machines with >= 4 cores.  Episodes are padded up so per-point
// episode work dominates the one table build each worker process repeats
// (the in-memory artifact store is per-process; --cache dir= would share
// it, but the benchmark must not touch the filesystem between runs).
#ifdef SEO_SWEEP_TOOL
void BM_SweepWorkers(benchmark::State& state) {
  const std::string cmd =
      std::string(SEO_SWEEP_TOOL) +
      " --smoke --episodes 8 --max-attempts 32 --threads 1 --workers " +
      std::to_string(state.range(0)) + " --output /dev/null 2>/dev/null";
  for (auto _ : state) {
    const int rc = std::system(cmd.c_str());
    if (rc != 0) {
      state.SkipWithError("sweep exited nonzero");
      break;
    }
  }
}
// UseRealTime: the work happens in child processes, so this process's CPU
// clock stays near zero — iteration scaling must follow wall time.
BENCHMARK(BM_SweepWorkers)
    ->ArgName("workers")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
#endif

// Steady-state cache hit: the lookup every episode start performs once the
// table for its geometry exists — a key fingerprint + map probe +
// shared_ptr copy, which must stay microseconds-class next to the
// millisecond-class build it replaces.
void BM_DeadlineTableCache(benchmark::State& state) {
  DeadlineTableCache cache;
  DeadlineTableKey key;
  key.table.max_distance = LipschitzIntervalConfig{}.sensing_range;
  key.body_radius = BarrierConfig{}.body_radius;
  const Barrier barrier(key.barrier);
  const LipschitzSafeInterval source(key.interval, barrier, Road(key.road));
  const auto build = [&] {
    return std::make_unique<DeadlineTable>(key.table, source,
                                           key.body_radius);
  };
  (void)cache.get(key, "", build);  // warm the single entry
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.get(key, "", build));
  }
}
BENCHMARK(BM_DeadlineTableCache);

// Steady-state hit path for the rollout-phi artifact kind: identical
// mechanics to the Lipschitz kind (fingerprint + map probe + shared_ptr
// copy), benchmarked separately because its key is larger (model + rollout
// config) and it must stay microseconds-class next to the ~10x costlier
// build it replaces.
void BM_RolloutPhiCache(benchmark::State& state) {
  RolloutTableStore store;
  RolloutTableKey key;
  key.table.distance_bins = 9;
  key.table.bearing_bins = 7;
  key.table.speed_bins = 5;
  key.table.max_distance = RolloutIntervalConfig{}.sensing_range;
  key.body_radius = BarrierConfig{}.body_radius;
  const Barrier barrier(key.barrier);
  const RolloutSafeInterval source(key.rollout, BicycleModel(key.model),
                                   barrier);
  const auto build = [&] {
    return std::make_unique<DeadlineTable>(key.table, source,
                                           key.body_radius);
  };
  (void)store.get(key, build);  // warm the single entry
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.get(key, build));
  }
}
BENCHMARK(BM_RolloutPhiCache);

// Steady-state hit path for the CEM policy-weights kind — the probe a
// service performs per episode instead of a multi-second training run.
void BM_CemWeightsCache(benchmark::State& state) {
  nn::CemWeightsStore store;
  nn::CemWeightsKey key;
  key.arch.sizes = {4, 8, 2};
  key.cem.population = 8;
  key.cem.elites = 2;
  key.cem.generations = 2;
  key.seed = 5;
  key.objective_tag = "bench-quadratic";
  key.objective_digest = 1;
  {
    nn::Mlp seed_net(key.arch);
    Rng init_rng(3);
    seed_net.init_xavier(init_rng);
    key.init_digest =
        nn::fingerprint_parameters(seed_net.flatten_parameters());
  }
  const auto build = [&] {
    auto net = std::make_unique<nn::Mlp>(key.arch);
    Rng init_rng(3);
    net->init_xavier(init_rng);
    Rng cem_rng(key.seed);
    const auto objective = [](const nn::Vector& p) {
      double score = 0.0;
      for (const double v : p) score -= v * v;
      return score;
    };
    const nn::CemResult result = nn::cem_optimize(
        objective, net->flatten_parameters(), key.cem, cem_rng);
    net->set_parameters(result.best_parameters);
    return net;
  };
  (void)store.get(key, build);  // warm the single entry
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.get(key, build));
  }
}
BENCHMARK(BM_CemWeightsCache);

// Artifact payload parse, v1 text vs v2 binary: the cost a cold process
// pays per disk load before it can serve a table.  The binary decode is a
// header check plus one contiguous memcpy of raw IEEE-754 cells; the text
// parse it replaced ran every cell through locale-independent decimal
// parsing.  Both parse the identical table so the ratio is the format win.
DeadlineTable payload_bench_table() {
  DeadlineTableKey key;
  key.table.max_distance = LipschitzIntervalConfig{}.sensing_range;
  key.body_radius = BarrierConfig{}.body_radius;
  const Barrier barrier(key.barrier);
  const LipschitzSafeInterval source(key.interval, barrier, Road(key.road));
  return DeadlineTable(key.table, source, key.body_radius);
}

void BM_ArtifactPayloadParseText(benchmark::State& state) {
  const DeadlineTable table = payload_bench_table();
  std::ostringstream out;
  table.save(out);
  const std::string text = out.str();
  for (auto _ : state) {
    std::istringstream in(text);
    benchmark::DoNotOptimize(DeadlineTable::load(in));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_ArtifactPayloadParseText)->Unit(benchmark::kMicrosecond);

void BM_ArtifactPayloadParseBinary(benchmark::State& state) {
  const DeadlineTable table = payload_bench_table();
  std::string payload;
  BinaryWriter writer(payload);
  table.encode(writer);
  for (auto _ : state) {
    BinaryReader in{std::string_view(payload)};
    benchmark::DoNotOptimize(DeadlineTable::decode(in));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload.size()));
}
BENCHMARK(BM_ArtifactPayloadParseBinary)->Unit(benchmark::kMicrosecond);

// Sweep-level before/after on a table-dominated rig: 16 grid points whose
// short episodes are dwarfed by a large T(x,u) build.  cached:0 rebuilds
// the identical table at every episode (the pre-cache behaviour);
// cached:1 builds each distinct geometry once per sweep.  The ratio is the
// caching win the content-addressed cache exists to deliver.
void BM_SweepTableCache(benchmark::State& state) {
  const bool cached = state.range(0) != 0;
  SweepConfig config;
  config.scenarios = {"paper_default"};
  config.axes = {{"channel_mbps", {"8", "12", "16", "20"}},
                 {"deadline_cap", {"2", "3", "4", "8"}}};
  config.base_overrides = {{"road_length", "30"},
                           {"max_episode_s", "2"},
                           {"table_distance_bins", "81"},
                           {"table_bearing_bins", "49"},
                           {"table_speed_bins", "41"},
                           {"table_cache", cached ? "true" : "false"}};
  config.episodes = 1;
  config.max_attempts = 1;
  config.require_success = false;
  config.threads = 1;
  for (auto _ : state) {
    DeadlineTableCache::global().clear();  // cold store every iteration
    benchmark::DoNotOptimize(run_sweep(config));
  }
}
BENCHMARK(BM_SweepTableCache)
    ->ArgName("cached")
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

// The same sweep-level before/after on a rollout-phi-dominated rig: the
// rollout source integrates the KBM per cell (~10x costlier than the
// closed-form certificate), so rebuilding the identical table every
// episode dominates everything — the win the artifact store's "rphi" kind
// exists to deliver (the acceptance benchmark for the rollout kind).
void BM_SweepRolloutTableCache(benchmark::State& state) {
  const bool cached = state.range(0) != 0;
  SweepConfig config;
  config.scenarios = {"paper_default"};
  config.axes = {{"channel_mbps", {"8", "12", "16", "20"}},
                 {"deadline_cap", {"2", "3", "4", "8"}}};
  config.base_overrides = {{"road_length", "30"},
                           {"max_episode_s", "2"},
                           {"table_source", "rollout"},
                           {"table_distance_bins", "21"},
                           {"table_bearing_bins", "13"},
                           {"table_speed_bins", "11"},
                           {"table_cache", cached ? "true" : "false"}};
  config.episodes = 1;
  config.max_attempts = 1;
  config.require_success = false;
  config.threads = 1;
  for (auto _ : state) {
    RolloutTableStore::global().clear();  // cold store every iteration
    benchmark::DoNotOptimize(run_sweep(config));
  }
}
BENCHMARK(BM_SweepRolloutTableCache)
    ->ArgName("cached")
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

// A realistic streamed episode: smoke-route length sample log plus a
// modest offload stream — the unit of work both the sweep trace tap
// (serialize) and the stage tools (parse + verify) pay per episode.
EpisodeTrace bench_trace() {
  EpisodeTrace trace;
  for (int i = 0; i < 600; ++i) {
    TraceSample s;
    s.t = 0.02 * i;
    s.position = {0.12 * i, 0.01 * i};
    s.heading = 0.001 * i;
    s.speed = 6.0 + 0.001 * i;
    s.barrier_h = 5.0 - 0.002 * i;
    s.delta_max = i % 4 + 1;
    s.interval_started = i % 5 == 0;
    s.filter_engaged = i % 7 == 0;
    s.steering = -0.1 + 0.0001 * i;
    s.throttle = 0.8;
    s.detection_age_s = 0.04;
    trace.add(s);
  }
  for (int i = 0; i < 40; ++i) {
    OffloadEvent e;
    e.pipeline = static_cast<std::size_t>(i % 2);
    e.submit_s = 0.3 * i;
    e.bytes = 24576.0;
    e.tx_time_s = 0.004;
    e.deadline_s = 0.3 * i + 0.5;
    e.probe = i % 3 == 0;
    trace.add_offload(e);
  }
  return trace;
}

void BM_TraceStreamWrite(benchmark::State& state) {
  const EpisodeTrace trace = bench_trace();
  TraceEpisodeInfo info;
  info.seed = 1000;
  info.label = "paper_default channel_mbps=8";
  const TraceEpisodeSummary summary{};
  std::string block;
  for (auto _ : state) {
    block.clear();  // reuse capacity, like the sweep's per-point block
    append_trace_episode(block, info, summary, trace);
    benchmark::DoNotOptimize(block.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(block.size()));
}
BENCHMARK(BM_TraceStreamWrite)->Unit(benchmark::kMicrosecond);

void BM_TraceStreamRead(benchmark::State& state) {
  const EpisodeTrace trace = bench_trace();
  TraceEpisodeInfo info;
  info.seed = 1000;
  info.label = "paper_default channel_mbps=8";
  std::ostringstream out;
  TraceStreamWriter writer(out);
  writer.write_episode(info, TraceEpisodeSummary{}, trace);
  writer.finish();
  const std::string bytes = out.str();
  for (auto _ : state) {
    std::istringstream in(bytes);
    TraceStreamReader reader(in);
    TraceRecord record;
    std::uint64_t samples = 0;
    while (reader.next(record))
      if (record.type == TraceRecord::Type::kSample) ++samples;
    benchmark::DoNotOptimize(samples);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_TraceStreamRead)->Unit(benchmark::kMicrosecond);

void BM_FullEpisode(benchmark::State& state) {
  ScenarioConfig config = default_scenario();
  config.obstacle_count = 2;
  config.mode = OptimizerMode::kGating;
  for (auto _ : state) {
    config.seed = static_cast<std::uint64_t>(state.iterations());
    benchmark::DoNotOptimize(run_episode(config));
  }
}
BENCHMARK(BM_FullEpisode)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
