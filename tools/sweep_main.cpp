// `sweep` — the scenario-library grid runner.
//
//   sweep --list
//   sweep --scenarios paper_default,dense_field \
//         --axis channel_mbps=5,10,20 --axis deadline_cap=2,4 \
//         --episodes 25 --threads 0 --format csv --output sweep.csv
//   sweep --smoke        # CI-sized 2x2 grid over 4 scenarios
//
// Every grid point = library scenario + axis overrides, run through the
// full experiment harness.  Output (csv|json) is identical for every
// --threads value; see tests/test_sweep.cpp.
#include <chrono>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "cli_common.hpp"
#include "safety/table_cache.hpp"
#include "sim/scenario_io.hpp"
#include "sim/sweep.hpp"
#include "sim/sweep_report.hpp"
#include "sim/sweep_shard.hpp"
#include "sim/trace.hpp"
#include "util/expect.hpp"

namespace {

using namespace seo;
using seo::cli::split;

int usage(int code) {
  std::ostream& out = code == 0 ? std::cout : std::cerr;
  out << "usage: sweep [options]\n"
         "  --list                 print the scenario library and exit\n"
         "  --keys                 print every sweepable key and exit\n"
         "  --scenarios a,b,...    library scenarios to sweep "
         "(default: paper_default)\n"
         "  --axis key=v1,v2,...   add a grid axis over a scenario_io key\n"
         "                         (repeatable; cartesian by default)\n"
         "  --paired               zip the axes instead of crossing them\n"
         "  --set key=value        base override applied to every point "
         "(repeatable)\n"
         "  --episodes N           successful episodes per point "
         "(default 25)\n"
         "  --max-attempts N       attempt budget per point (default 250)\n"
         "  --seed N               base seed (default 1000)\n"
         "  --allow-failures       aggregate failed episodes too\n"
         "  --threads N            grid shards in flight (1 serial, 0 all "
         "cores; default 0)\n"
         "  --workers N            split the grid across N worker "
         "processes (default 1\n"
         "                         in-process, 0 = all cores; each worker "
         "honors --threads).\n"
         "                         Report and --trace-out bytes are "
         "identical to --workers 1\n"
         "  --shard i/N            run only shard i of N (multi-host "
         "mode: one shard per\n"
         "                         box with --trace-out, recombined "
         "offline with trace-merge)\n"
         "  --stats                print a thread-pool utilization line to "
         "stderr\n"
      << seo::cli::kCacheUsage
      << "  --format csv|json      report format (default csv)\n"
         "  --output PATH          write the report to PATH (default "
         "stdout)\n"
         "  --trace-out FILE|-     stream every episode as a binary "
         "seo-trace\n"
         "                         ('-' = stdout and then requires --output,\n"
         "                         so the report never interleaves; pipe into\n"
         "                         trace-export / trace-deadline-histogram /\n"
         "                         trace-energy-report / trace-safety-audit)\n"
         "  --smoke                CI preset: 2x2 grid over 4 scenarios on "
         "a short route\n"
         "                         (a seed config: later flags refine it, "
         "--axis replaces its grid)\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  SweepConfig config;
  config.threads = 0;
  std::string format = "csv";
  std::string output;
  std::string trace_out;
  seo::cli::CacheCliOptions cache;

  // --smoke is a preset, not a terminal mode: it seeds the config before
  // the other flags are parsed, so `--smoke --episodes 10` refines the
  // preset instead of being silently discarded.
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--smoke") smoke = true;
  if (smoke) {
    config = smoke_sweep();
    config.threads = 0;
  }
  bool user_axes = false;  // the first user --axis replaces preset axes
  bool show_pool_stats = false;
  int workers = 1;
  std::size_t shard_index = 0;
  std::size_t shard_count = 0;  // > 0 once --shard i/N was parsed
  bool shard_pipe = false;      // hidden: binary frames on stdout
  bool shard_trace = false;     // hidden: embed trace blocks in the frames

  const auto next_arg = [&](int& i) -> std::string {
    if (i + 1 >= argc) {
      std::cerr << "missing value for " << argv[i] << "\n";
      std::exit(usage(2));
    }
    return argv[++i];
  };
  const auto next_int = [&](int& i) -> long long {
    const std::string flag = argv[i];
    const std::string text = next_arg(i);
    try {
      std::size_t consumed = 0;
      const long long v = std::stoll(text, &consumed);
      if (consumed == text.size()) return v;
    } catch (const std::exception&) {
    }
    std::cerr << flag << " expects an integer, got '" << text << "'\n";
    std::exit(usage(2));
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return usage(0);
    if (arg == "--list") {
      for (const auto& entry : scenario_library())
        std::cout << entry.name << "\n    " << entry.summary << "\n";
      return 0;
    }
    if (arg == "--keys") {
      for (const auto& key : scenario_keys()) std::cout << key << "\n";
      return 0;
    }
    if (arg == "--scenarios") {
      config.scenarios = split(next_arg(i), ',');
    } else if (arg == "--axis") {
      const std::string spec = next_arg(i);
      const auto eq = spec.find('=');
      if (eq == std::string::npos) {
        std::cerr << "--axis expects key=v1,v2,...\n";
        return usage(2);
      }
      SweepAxis axis;
      axis.key = spec.substr(0, eq);
      axis.values = split(spec.substr(eq + 1), ',');
      if (smoke && !user_axes) config.axes.clear();  // user grid wins
      user_axes = true;
      config.axes.push_back(std::move(axis));
    } else if (arg == "--paired") {
      config.grid = GridMode::kPaired;
    } else if (arg == "--set") {
      const std::string spec = next_arg(i);
      const auto eq = spec.find('=');
      if (eq == std::string::npos) {
        std::cerr << "--set expects key=value\n";
        return usage(2);
      }
      config.base_overrides.emplace_back(spec.substr(0, eq),
                                         spec.substr(eq + 1));
    } else if (arg == "--episodes") {
      config.episodes = static_cast<int>(next_int(i));
    } else if (arg == "--max-attempts") {
      config.max_attempts = static_cast<int>(next_int(i));
    } else if (arg == "--seed") {
      const long long seed = next_int(i);
      if (seed < 0) {
        std::cerr << "--seed must be non-negative\n";
        return usage(2);
      }
      config.base_seed = static_cast<std::uint64_t>(seed);
    } else if (arg == "--allow-failures") {
      config.require_success = false;
    } else if (arg == "--threads") {
      config.threads = static_cast<int>(next_int(i));
    } else if (arg == "--workers") {
      const long long n = next_int(i);
      if (n < 0) {
        std::cerr << "--workers must be >= 0\n";
        return usage(2);
      }
      workers = static_cast<int>(n);
    } else if (arg == "--shard") {
      const std::string spec = next_arg(i);
      const auto slash = spec.find('/');
      bool ok = slash != std::string::npos && slash > 0 &&
                slash + 1 < spec.size();
      if (ok) {
        try {
          std::size_t c1 = 0, c2 = 0;
          const long long idx = std::stoll(spec.substr(0, slash), &c1);
          const long long count = std::stoll(spec.substr(slash + 1), &c2);
          ok = c1 == slash && c2 == spec.size() - slash - 1 && idx >= 0 &&
               count >= 1 && idx < count;
          if (ok) {
            shard_index = static_cast<std::size_t>(idx);
            shard_count = static_cast<std::size_t>(count);
          }
        } catch (const std::exception&) {
          ok = false;
        }
      }
      if (!ok) {
        std::cerr << "--shard expects i/N with 0 <= i < N\n";
        return usage(2);
      }
    } else if (arg == "--shard-pipe") {
      shard_pipe = true;
    } else if (arg == "--shard-trace") {
      shard_trace = true;
    } else if (arg == "--stats") {
      show_pool_stats = true;
    } else if (seo::cli::parse_cache_flag(argc, argv, i,
                                          config.base_overrides, cache)) {
      // Shared artifact-store flags (cli_common.hpp).
    } else if (arg == "--format") {
      format = next_arg(i);
    } else if (arg == "--output") {
      output = next_arg(i);
    } else if (arg == "--trace-out") {
      trace_out = next_arg(i);
    } else if (arg == "--smoke") {
      // Handled by the pre-scan above.
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return usage(2);
    }
  }

  // Flag interplay for the multi-process modes.
  const std::size_t worker_count = ThreadPool::resolve_threads(workers);
  if (worker_count > 1 && shard_count > 0) {
    std::cerr << "--workers spawns its own shards; it cannot be combined "
                 "with --shard\n";
    return usage(2);
  }
  if (shard_pipe && shard_count == 0) {
    std::cerr << "--shard-pipe requires --shard i/N\n";
    return usage(2);
  }
  if (shard_pipe && (!output.empty() || !trace_out.empty())) {
    std::cerr << "--shard-pipe streams binary frames on stdout; --output "
                 "and --trace-out do not apply\n";
    return usage(2);
  }

  // The binary trace stream shares stdout with the report only if exactly
  // one of them goes there; '-' therefore demands --output.
  if (trace_out == "-" && output.empty()) {
    std::cerr << "--trace-out - writes the binary stream to stdout; route "
                 "the report elsewhere with --output PATH\n";
    return usage(2);
  }
  std::ofstream trace_file;
  std::optional<OrderedTraceSink> trace_sink;
  if (!trace_out.empty()) {
    std::ostream* stream = &std::cout;
    if (trace_out != "-") {
      trace_file.open(trace_out, std::ios::binary | std::ios::trunc);
      if (!trace_file) {
        std::cerr << "cannot open " << trace_out << " for writing\n";
        return 1;
      }
      stream = &trace_file;
    }
    trace_sink.emplace(*stream);
    config.trace_sink = &*trace_sink;
  }

  try {
    seo::cli::run_requested_gc(cache);

    // Hidden pipe-worker mode (a `--workers` child): every frame goes out
    // on stdout, diagnostics on stderr, nothing else is printed.
    if (shard_pipe)
      return run_sweep_worker(config, shard_index, shard_count, shard_trace,
                              STDOUT_FILENO);

    const auto run_start = std::chrono::steady_clock::now();
    std::size_t points_run = 0;
    std::ostringstream report;
    std::vector<ArtifactKindStats> worker_stats;
    if (worker_count > 1) {
      // Parent mode: plan locally, farm the grid out to self-exec shard
      // processes, merge their metric rows and trace blocks.  Workers
      // inherit every flag except --workers/--output/--trace-out/--stats,
      // so they plan the identical sweep (the hello handshake verifies).
      std::vector<std::string> worker_args;
      for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--workers" || arg == "--output" || arg == "--trace-out") {
          ++i;
          continue;
        }
        if (arg == "--stats") continue;
        worker_args.push_back(arg);
      }
      const SweepPlan plan = plan_sweep(config);
      const SweepWorkersResult merged =
          run_sweep_workers(plan, sweep_self_exe(argv[0]), worker_args,
                            worker_count, config.trace_sink);
      worker_stats = merged.stats;
      points_run = plan.points.size();
      seo::write_sweep_report(report, format, config, plan.points,
                              merged.metrics);
    } else {
      const std::vector<SweepRow> rows =
          shard_count > 0 ? run_sweep_shard(config, shard_index, shard_count)
                          : run_sweep(config);
      points_run = rows.size();
      seo::write_sweep_report(report, format, config, rows);
    }
    if (trace_sink) {
      trace_sink->finish();
      std::cerr << "streamed " << trace_sink->episodes_written()
                << " episode traces to "
                << (trace_out == "-" ? "stdout" : trace_out) << "\n";
    }
    const double run_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      run_start)
            .count();
    // Stats to stderr, never the report stream: CI asserts warm runs
    // actually hit, and operators see what a cold run cost.  In parent
    // mode the printed rows are the farm-wide sums from the done frames.
    seo::cli::print_artifact_store_stats(std::cerr, worker_stats);
    if (show_pool_stats) seo::cli::print_thread_pool_stats(std::cerr, run_s);
    if (output.empty()) {
      std::cout << report.str();
    } else {
      std::ofstream out(output);
      if (!out) {
        std::cerr << "cannot open " << output << " for writing\n";
        return 1;
      }
      out << report.str();
      std::cerr << "wrote " << points_run << " grid points to " << output
                << "\n";
    }
  } catch (const seo::ContractViolation& e) {
    std::cerr << "sweep configuration error: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "sweep failed: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
