#!/usr/bin/env python3
"""Benchmark regression gate: compare a fresh BENCH_hotpaths.json against
the committed baseline and fail on real_time regressions.

Usage:
    tools/bench_compare.py fresh.json baseline.json \
        [--max-regression 0.25] [--names BM_A,BM_B,...]

Compares the named hot-path benchmarks (or a built-in default set) and
exits 1 when any of them regressed by more than --max-regression
(fractional, e.g. 0.25 = +25% real_time).  Benchmarks missing from either
file fail the gate too — a silently dropped benchmark is how regressions
hide.  Improvements and small deltas are reported but never fail.

Absolute timings only compare meaningfully across machines of the same
class.  The class fingerprint is (num_cpus, mhz_per_cpu) — deliberately
NOT host_name, which is ephemeral on CI runners and would mark every run
cross-host.  When the fingerprints disagree, the gate widens the threshold
by --cross-host-factor (default 4x) and says so: different hardware can
still trip it on a catastrophic regression, but ordinary machine variance
cannot turn the build red.  Refreshing the committed baseline from a CI
artifact (same runner class) restores the tight gate.

Both files are in the repo's BENCH_hotpaths.json shape (see
tools/bench_to_json.py): {"benchmarks": {name: {real_time, time_unit}}}.

Scaling gate: besides absolute regressions, the gate asserts that episode
throughput actually scales — the threads:8 variants of the threaded
benchmarks must run in at most a fixed fraction of their threads:1 real
time (default: 0.6x for BM_ExperimentBatch, 0.75x for
BM_DeadlineTableBuild), and the distributed sweep's workers:4 arm must
run in at most 0.6x of workers:1 (BM_SweepWorkers, which carries a
/real_time name suffix from UseRealTime).  The ratio is taken WITHIN the
fresh file, so it
is machine-independent; it is only meaningful on a multicore host, so the
assertion is skipped (with a note) when the fresh run's machine has fewer
than --min-scaling-cpus CPUs (default 4 — the committed baseline from a
1-CPU container records flat ratios, CI's 4-vCPU runners enforce real
ones).  Disable explicitly with --no-scaling.
"""
import argparse
import json
import sys

# The stable per-tick hot paths (threads-suffixed scaling entries are
# machine-shaped, so the gate pins the serial ones).
DEFAULT_NAMES = [
    "BM_ArtifactPayloadParseBinary",
    "BM_ArtifactPayloadParseText",
    "BM_BarrierValue",
    "BM_BicycleStepRk4",
    "BM_CemWeightsCache",
    "BM_DeadlineTableCache",
    "BM_DeadlineTableProbe",
    "BM_LipschitzInterval",
    "BM_MlpForwardWorkspace",
    "BM_RolloutPhiCache",
    "BM_SafetyFilterPass",
    "BM_TraceStreamRead",
    "BM_TraceStreamWrite",
]

# Parallel-vs-serial speedup assertions checked within the fresh file:
# (parallel benchmark, serial benchmark, max allowed real_time ratio).
DEFAULT_SCALING = [
    ("BM_ExperimentBatch/threads:8", "BM_ExperimentBatch/threads:1", 0.60),
    ("BM_DeadlineTableBuild/threads:8", "BM_DeadlineTableBuild/threads:1",
     0.75),
    ("BM_SweepWorkers/workers:4/real_time",
     "BM_SweepWorkers/workers:1/real_time", 0.60),
]

UNIT_TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def real_time_ns(entry: dict) -> float:
    unit = entry.get("time_unit", "ns")
    if unit not in UNIT_TO_NS:
        raise ValueError(f"unknown time_unit {unit!r}")
    return float(entry["real_time"]) * UNIT_TO_NS[unit]


def same_machine_class(fresh_ctx: dict, baseline_ctx: dict) -> bool:
    keys = ("num_cpus", "mhz_per_cpu")
    return all(fresh_ctx.get(k) == baseline_ctx.get(k) for k in keys)


def check_scaling(args, fresh: dict, fresh_ctx: dict) -> list:
    """Asserts parallel/serial real_time ratios within the fresh file."""
    if args.no_scaling or not args.scaling:
        return []
    num_cpus = fresh_ctx.get("num_cpus") or 0
    if num_cpus < args.min_scaling_cpus:
        print(f"note: fresh machine has {num_cpus} CPU(s) < "
              f"{args.min_scaling_cpus}; parallel speedup is not observable "
              f"here — skipping the scaling assertions (CI's multicore "
              f"runners enforce them).")
        return []
    failures = []
    print("\nscaling (within fresh file):")
    for spec in args.scaling.split(";"):
        parts = spec.split("|")
        if len(parts) != 3:
            failures.append(f"bad --scaling spec {spec!r} "
                            f"(want parallel|serial|max_ratio)")
            continue
        par_name, ser_name = parts[0], parts[1]
        max_ratio = float(parts[2])
        missing = [n for n in (par_name, ser_name) if n not in fresh]
        if missing:
            failures.append(f"scaling {par_name}: missing "
                            f"{', '.join(missing)} from fresh results")
            continue
        par_ns = real_time_ns(fresh[par_name])
        ser_ns = real_time_ns(fresh[ser_name])
        ratio = par_ns / ser_ns
        flag = ""
        if ratio > max_ratio:
            failures.append(f"{par_name}: {ratio:.2f}x of {ser_name} "
                            f"(limit {max_ratio:.2f}x — parallel speedup "
                            f"regressed)")
            flag = "  << NO SCALING"
        print(f"  {par_name} / {ser_name} = {ratio:.2f}x "
              f"(limit {max_ratio:.2f}x){flag}")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", help="freshly produced BENCH_hotpaths.json")
    parser.add_argument("baseline", help="committed baseline to compare against")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="fail when real_time grows by more than this "
                             "fraction (default 0.25 = +25%%)")
    parser.add_argument("--cross-host-factor", type=float, default=4.0,
                        help="multiply the threshold by this when the two "
                             "files were produced on different machines "
                             "(default 4.0)")
    parser.add_argument("--names", default=",".join(DEFAULT_NAMES),
                        help="comma-separated benchmark names to gate")
    parser.add_argument("--scaling",
                        default=";".join(f"{p}|{s}|{r}"
                                         for p, s, r in DEFAULT_SCALING),
                        help="semicolon-separated parallel|serial|max_ratio "
                             "assertions checked within the fresh file")
    parser.add_argument("--no-scaling", action="store_true",
                        help="skip the scaling assertions entirely")
    parser.add_argument("--min-scaling-cpus", type=int, default=4,
                        help="skip scaling assertions when the fresh "
                             "machine has fewer CPUs than this (default 4)")
    args = parser.parse_args()

    with open(args.fresh) as f:
        fresh_doc = json.load(f)
    with open(args.baseline) as f:
        baseline_doc = json.load(f)
    fresh = fresh_doc["benchmarks"]
    baseline = baseline_doc["benchmarks"]

    limit = args.max_regression
    base_ctx = baseline_doc.get("context", {})
    fresh_ctx = fresh_doc.get("context", {})
    if not same_machine_class(fresh_ctx, base_ctx):
        limit = args.max_regression * args.cross_host_factor

        def fingerprint(ctx):
            return f"{ctx.get('num_cpus')}cpu@{ctx.get('mhz_per_cpu')}MHz"

        print(f"note: baseline machine class ({fingerprint(base_ctx)}) != "
              f"fresh ({fingerprint(fresh_ctx)}); absolute timings are not "
              f"comparable at the tight threshold — gating at +{limit:.0%} "
              f"instead of +{args.max_regression:.0%}. Refresh the baseline "
              f"from a CI artifact (same runner class) to restore the tight "
              f"gate.")

    names = [n for n in args.names.split(",") if n]
    failures = []
    width = max((len(n) for n in names), default=9)
    if names:
        print(f"{'benchmark':<{width}}  {'baseline':>12}  {'fresh':>12}  "
              f"delta")
    for name in names:
        if name not in baseline:
            failures.append(f"{name}: missing from baseline")
            print(f"{name:<{width}}  {'MISSING':>12}")
            continue
        if name not in fresh:
            failures.append(f"{name}: missing from fresh results")
            print(f"{name:<{width}}  {'':>12}  {'MISSING':>12}")
            continue
        base_ns = real_time_ns(baseline[name])
        fresh_ns = real_time_ns(fresh[name])
        delta = fresh_ns / base_ns - 1.0
        flag = ""
        if delta > limit:
            failures.append(f"{name}: {delta:+.1%} real_time "
                            f"(limit +{limit:.0%})")
            flag = "  << REGRESSION"
        print(f"{name:<{width}}  {base_ns:>10.1f}ns  {fresh_ns:>10.1f}ns  "
              f"{delta:+7.1%}{flag}")

    failures += check_scaling(args, fresh, fresh_ctx)

    if failures:
        print(f"\nbench gate FAILED ({len(failures)}):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nbench gate passed: {len(names)} hot paths within "
          f"+{limit:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
