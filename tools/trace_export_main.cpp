// `trace-export` — decode a binary seo-trace stream to CSV or JSON.
//
//   sweep --smoke --trace-out - --output grid.csv | trace-export -o trace.csv
//   trace-export run.trace --format json
//
// CSV is the EpisodeTrace::to_csv shape — the same header and the same
// formatter (sim/trace.hpp's shared helpers), so the streamed export is
// byte-identical to the in-memory CSV path by construction; episodes are
// concatenated under one header in stream order.  JSON decodes the full
// structure (per-episode identity, summary, offloads, samples).
#include <cstdint>
#include <iostream>
#include <string>

#include "core/fingerprint.hpp"
#include "sim/sweep_report.hpp"
#include "trace_stage.hpp"
#include "util/numeric.hpp"

namespace {

using namespace seo;

int usage(int code) {
  std::ostream& out = code == 0 ? std::cout : std::cerr;
  out << "usage: trace-export [FILE|-] [options]\n"
      << seo::cli::kTraceStageUsage
      << "  --format csv|json      export format (default csv)\n";
  return code;
}

void json_summary(std::ostream& out, const TraceEpisodeSummary& s) {
  out << "{\"completed\": " << (s.completed ? "true" : "false")
      << ", \"collided\": " << (s.collided ? "true" : "false")
      << ", \"off_road\": " << (s.off_road ? "true" : "false")
      << ", \"timed_out\": " << (s.timed_out ? "true" : "false")
      << ", \"duration_s\": " << format_double(s.duration_s)
      << ", \"avg_speed\": " << format_double(s.avg_speed)
      << ", \"min_h\": \"" << format_double(s.min_h) << "\""
      << ", \"filter_engagements\": " << s.filter_engagements
      << ", \"intervals\": " << s.intervals
      << ", \"energy_actual_j\": " << format_double(s.energy_actual_j)
      << ", \"energy_baseline_j\": " << format_double(s.energy_baseline_j)
      << "}";
}

}  // namespace

int main(int argc, char** argv) {
  seo::cli::TraceStage stage;
  std::string format = "csv";

  const auto next_arg = [&](int& i) -> std::string {
    if (i + 1 >= argc) {
      std::cerr << "missing value for " << argv[i] << "\n";
      std::exit(usage(2));
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return usage(0);
    if (arg == "--format") {
      format = next_arg(i);
    } else if (stage.parse_flag(arg, i, next_arg)) {
      // Shared stage flags (trace_stage.hpp).
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return usage(2);
    }
  }
  if (!stage.validate("trace-export")) return usage(2);
  if (format != "csv" && format != "json") {
    std::cerr << "trace-export: unknown format '" << format
              << "' (csv|json)\n";
    return usage(2);
  }

  try {
    TraceStreamReader reader(stage.open_input("trace-export"), stage.tee());
    std::ostream& report = stage.open_report("trace-export");
    TraceRecord record;
    if (format == "csv") {
      // One header, then every episode's sample lines in stream order,
      // rendered by the exact helpers to_csv uses.
      report << trace_csv_header();
      std::string line;
      while (reader.next(record)) {
        if (record.type != TraceRecord::Type::kSample) continue;
        line.clear();
        append_trace_sample_csv(line, record.sample);
        report << line;
      }
    } else {
      report << "{\n  \"version\": " << reader.version()
             << ",\n  \"run_digest\": \""
             << fingerprint_hex(reader.run_digest())
             << "\",\n  \"episodes\": [";
      bool first_episode = true;
      bool any_sample = false;
      bool any_offload = false;
      while (reader.next(record)) {
        switch (record.type) {
          case TraceRecord::Type::kEpisodeBegin: {
            const TraceEpisodeInfo& e = record.episode;
            report << (first_episode ? "\n" : ",\n");
            first_episode = false;
            report << "    {\n      \"seed\": " << e.seed
                   << ",\n      \"scenario_digest\": \""
                   << fingerprint_hex(e.scenario_digest)
                   << "\",\n      \"point_index\": " << e.point_index
                   << ",\n      \"vehicle\": ";
            if (e.vehicle == kTraceNoVehicle)
              report << "null";
            else
              report << e.vehicle;
            report << ",\n      \"label\": \"" << report_json_escape(e.label)
                   << "\",\n      \"sample_columns\": [\"t\", \"x\", \"y\", "
                      "\"heading\", \"speed\", \"h\", \"delta_max\", "
                      "\"unconstrained\", \"interval_started\", "
                      "\"engaged\", \"steering\", \"throttle\", "
                      "\"detection_age\"],\n      \"samples\": [";
            any_sample = any_offload = false;
            break;
          }
          case TraceRecord::Type::kSample: {
            const TraceSample& s = record.sample;
            report << (any_sample ? ",\n" : "\n");
            any_sample = true;
            report << "        [" << format_double(s.t) << ", "
                   << format_double(s.position.x) << ", "
                   << format_double(s.position.y) << ", "
                   << format_double(s.heading) << ", "
                   << format_double(s.speed) << ", "
                   << format_double(s.barrier_h) << ", " << s.delta_max
                   << ", " << (s.unconstrained ? 1 : 0) << ", "
                   << (s.interval_started ? 1 : 0) << ", "
                   << (s.filter_engaged ? 1 : 0) << ", "
                   << format_double(s.steering) << ", "
                   << format_double(s.throttle) << ", "
                   << format_double(s.detection_age_s) << "]";
            break;
          }
          case TraceRecord::Type::kOffload: {
            // Within an episode the writer emits every sample before any
            // offload, so the first offload closes the samples array.
            const OffloadEvent& o = record.offload;
            if (!any_offload)
              report << (any_sample ? "\n      " : "") << "],\n"
                     << "      \"offloads\": [";
            report << (any_offload ? ",\n" : "\n");
            any_offload = true;
            report << "        {\"pipeline\": " << o.pipeline
                   << ", \"submit_s\": " << format_double(o.submit_s)
                   << ", \"bytes\": " << format_double(o.bytes)
                   << ", \"tx_time_s\": " << format_double(o.tx_time_s)
                   << ", \"deadline_s\": " << format_double(o.deadline_s)
                   << ", \"probe\": " << (o.probe ? "true" : "false") << "}";
            break;
          }
          case TraceRecord::Type::kEpisodeEnd: {
            if (!any_offload)
              // No offloads: the samples array is still open; close it and
              // emit an empty offloads array to keep the shape uniform.
              report << (any_sample ? "\n      " : "") << "],\n"
                     << "      \"offloads\": [";
            report << (any_offload ? "\n      " : "") << "],\n"
                   << "      \"summary\": ";
            json_summary(report, record.summary);
            report << "\n    }";
            break;
          }
        }
      }
      report << (first_episode ? "]" : "\n  ]") << "\n}\n";
    }
    std::cerr << "trace-export: " << reader.episodes_total()
              << " episodes\n";
  } catch (const TraceStreamError& e) {
    return seo::cli::report_stream_error("trace-export", e);
  }
  return 0;
}
