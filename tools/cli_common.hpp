// Small helpers shared by the CLI mains in this directory (sweep, fleet).
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "safety/table_cache.hpp"

namespace seo::cli {

/// One greppable stats line for the process-wide deadline-table cache —
/// shared so the two CLIs (and the CI assertions grepping this exact
/// format) can never drift apart.
inline void print_table_cache_stats(std::ostream& out) {
  const DeadlineTableCacheStats cache = DeadlineTableCache::global().stats();
  out << "table cache: " << cache.hits << " hits, " << cache.misses
      << " misses, " << cache.builds << " builds, " << cache.waits
      << " waits, " << cache.disk_loads << " disk loads, "
      << cache.disk_stores << " disk stores, " << cache.disk_failures
      << " disk failures\n";
}

/// Splits on `sep`, keeping empty fields ("a,,b" -> {"a", "", "b"}).
inline std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string current;
  for (const char c : text) {
    if (c == sep) {
      parts.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  parts.push_back(current);
  return parts;
}

}  // namespace seo::cli
