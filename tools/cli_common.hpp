// Small helpers shared by the CLI mains in this directory (sweep, fleet):
// string splitting plus the artifact-store CLI surface — flag parsing,
// startup GC, and the unified per-kind stats report — kept here so the two
// CLIs (and the CI assertions grepping these exact formats) can never
// drift apart.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "core/artifact_store.hpp"
#include "nn/weights_store.hpp"
#include "safety/table_cache.hpp"
#include "util/numeric.hpp"
#include "util/thread_pool.hpp"

namespace seo::cli {

/// Strict numeric flag parse shared by every CLI double flag: the whole
/// string must form one finite number (util/numeric, locale-independent).
/// "5x", "nan", "inf" and "" are all errors — a flag value with a typo
/// must fail loudly, never silently truncate to a prefix.
inline double parse_numeric_flag(const std::string& flag,
                                 const std::string& text,
                                 double min_value = 0.0) {
  double v = 0.0;
  if (!parse_finite_double(text, v) || v < min_value) {
    std::cerr << flag << " expects a finite number >= " << min_value
              << ", got '" << text << "'\n";
    std::exit(2);
  }
  return v;
}

/// Splits on `sep`, keeping empty fields ("a,,b" -> {"a", "", "b"}).
inline std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string current;
  for (const char c : text) {
    if (c == sep) {
      parts.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  parts.push_back(current);
  return parts;
}

/// Usage lines for the shared artifact-store flags, spliced into each
/// CLI's --help text.
constexpr const char* kCacheUsage =
    "  --table-cache on|off   content-addressed artifact reuse (default "
    "on;\n"
    "                         results are byte-identical either way)\n"
    "  --table-cache-dir DIR  persist built artifacts (all kinds) in DIR\n"
    "  --cache-budget-mb N    artifact-dir size cap [MB]; LRU GC sweeps "
    "after stores\n"
    "  --cache-max-age-h N    artifact last-use age cap [hours]\n"
    "  --cache-mem-mb N       per-kind in-memory byte budget [MB]\n"
    "  --cache-gc             LRU GC sweep over the artifact dir before "
    "the run\n";

/// Artifact-store options accumulated while parsing.
struct CacheCliOptions {
  std::string dir;
  double budget_mb = 0.0;
  double max_age_h = 0.0;
  bool gc = false;
};

/// Consumes one shared artifact-store flag (and its value) from argv.
/// Returns false when `argv[i]` is not a cache flag; exits with code 2 on
/// a malformed value.  Recognized flags land in `overrides` (scenario_io
/// keys, so they reach run_episode through the normal config path) and in
/// `state` (for the startup GC).
inline bool parse_cache_flag(
    int argc, char** argv, int& i,
    std::vector<std::pair<std::string, std::string>>& overrides,
    CacheCliOptions& state) {
  const std::string arg = argv[i];
  const auto next_value = [&]() -> std::string {
    if (i + 1 >= argc) {
      std::cerr << "missing value for " << arg << "\n";
      std::exit(2);
    }
    return argv[++i];
  };
  const auto next_double = [&]() -> std::pair<std::string, double> {
    const std::string text = next_value();
    return {text, parse_numeric_flag(arg, text)};
  };

  if (arg == "--table-cache") {
    const std::string value = next_value();
    if (value != "on" && value != "off") {
      std::cerr << "--table-cache expects on|off\n";
      std::exit(2);
    }
    overrides.emplace_back("table_cache", value == "on" ? "true" : "false");
    return true;
  }
  if (arg == "--table-cache-dir") {
    state.dir = next_value();
    overrides.emplace_back("table_cache_dir", state.dir);
    return true;
  }
  if (arg == "--cache-budget-mb") {
    const auto [text, v] = next_double();
    state.budget_mb = v;
    overrides.emplace_back("cache_budget_mb", text);
    return true;
  }
  if (arg == "--cache-max-age-h") {
    const auto [text, v] = next_double();
    state.max_age_h = v;
    overrides.emplace_back("cache_max_age_h", text);
    return true;
  }
  if (arg == "--cache-mem-mb") {
    const auto [text, v] = next_double();
    (void)v;
    overrides.emplace_back("cache_mem_mb", text);
    return true;
  }
  if (arg == "--cache-gc") {
    state.gc = true;
    return true;
  }
  return false;
}

/// Startup GC requested via --cache-gc: one LRU sweep over the artifact
/// dir with the configured caps, reported to stderr.
inline void run_requested_gc(const CacheCliOptions& state) {
  if (!state.gc) return;
  if (state.dir.empty()) {
    std::cerr << "--cache-gc requires --table-cache-dir\n";
    std::exit(2);
  }
  const ArtifactGcResult r = artifact_store_gc(
      state.dir,
      state.budget_mb > 0.0
          ? static_cast<std::uint64_t>(state.budget_mb * 1024.0 * 1024.0)
          : 0,
      state.max_age_h > 0.0 ? state.max_age_h * 3600.0 : 0.0);
  std::cerr << "artifact gc: scanned " << r.scanned << " files, removed "
            << r.removed << ", " << r.bytes_before << " -> " << r.bytes_after
            << " bytes\n";
}

/// One greppable stats line per artifact kind for the process-wide stores.
/// Every kind reports — also the ones this run never touched — so CI and
/// operators always see the full picture.
inline void print_artifact_store_stats(std::ostream& out) {
  // Touching the global accessors guarantees each kind is registered (in
  // this order on a fresh process) before the snapshot.
  (void)DeadlineTableCache::global();
  (void)RolloutTableStore::global();
  (void)nn::cem_weights_store();
  for (const auto& row : ArtifactStoreRegistry::global().snapshot()) {
    const ArtifactStoreStats& s = row.stats;
    out << "artifact store [" << row.kind << "]: " << s.hits << " hits, "
        << s.misses << " misses, " << s.builds << " builds, " << s.waits
        << " waits, " << s.evictions << " evictions, " << s.bytes
        << " bytes, " << s.disk_loads << " disk loads, " << s.disk_stores
        << " disk stores, " << s.disk_failures << " disk failures\n";
  }
}

/// One greppable utilization line for the global thread pool, matching the
/// artifact-store stats format (`--stats` in the sweep/fleet CLIs).
/// `window_s` is the wall time the run took; busy % is task time over
/// worker capacity in that window.
inline void print_thread_pool_stats(std::ostream& out, double window_s) {
  const ThreadPool& pool = ThreadPool::global();
  const ThreadPoolStats s = pool.stats();
  const double busy_pct = 100.0 * s.busy_fraction(window_s, pool.size());
  out << "thread pool: " << pool.size() << " workers, " << s.submitted
      << " tasks, " << s.steals << " steals, " << s.inline_runs
      << " inline, " << s.max_queue_depth << " max depth, "
      << static_cast<std::uint64_t>(busy_pct + 0.5) << "% busy\n";
}

}  // namespace seo::cli
