// Small helpers shared by the CLI mains in this directory (sweep, fleet).
#pragma once

#include <string>
#include <vector>

namespace seo::cli {

/// Splits on `sep`, keeping empty fields ("a,,b" -> {"a", "", "b"}).
inline std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string current;
  for (const char c : text) {
    if (c == sep) {
      parts.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  parts.push_back(current);
  return parts;
}

}  // namespace seo::cli
