// Small helpers shared by the CLI mains in this directory (sweep, fleet):
// string splitting plus the artifact-store CLI surface — flag parsing,
// startup GC, and the unified per-kind stats report — kept here so the two
// CLIs (and the CI assertions grepping these exact formats) can never
// drift apart.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "core/artifact_store.hpp"
#include "nn/weights_store.hpp"
#include "safety/table_cache.hpp"
#include "util/numeric.hpp"
#include "util/thread_pool.hpp"

namespace seo::cli {

/// Strict numeric flag parse shared by every CLI double flag: the whole
/// string must form one finite number (util/numeric, locale-independent).
/// "5x", "nan", "inf" and "" are all errors — a flag value with a typo
/// must fail loudly, never silently truncate to a prefix.
inline double parse_numeric_flag(const std::string& flag,
                                 const std::string& text,
                                 double min_value = 0.0) {
  double v = 0.0;
  if (!parse_finite_double(text, v) || v < min_value) {
    std::cerr << flag << " expects a finite number >= "
              << format_double(min_value) << ", got '" << text << "'\n";
    std::exit(2);
  }
  return v;
}

/// Splits on `sep`, keeping empty fields ("a,,b" -> {"a", "", "b"}).
inline std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string current;
  for (const char c : text) {
    if (c == sep) {
      parts.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  parts.push_back(current);
  return parts;
}

/// Usage lines for the shared artifact-store flags, spliced into each
/// CLI's --help text.
constexpr const char* kCacheUsage =
    "  --cache SPEC           artifact-store settings, comma-separated:\n"
    "                           on|off        content-addressed reuse "
    "(default on;\n"
    "                                         results byte-identical "
    "either way)\n"
    "                           dir=DIR       persist artifacts (all "
    "kinds) in DIR\n"
    "                           mem-mb=N      per-kind in-memory byte "
    "budget [MB]\n"
    "                           budget-mb=N   artifact-dir size cap [MB]; "
    "LRU GC\n"
    "                                         sweeps after stores\n"
    "                           max-age-h=N   artifact last-use age cap "
    "[hours]\n"
    "                           gc            LRU GC sweep over the dir "
    "before the run\n"
    "                         e.g. --cache dir=artifacts,budget-mb=512,gc\n"
    "  --table-cache on|off, --table-cache-dir DIR, --cache-budget-mb N,\n"
    "  --cache-max-age-h N, --cache-mem-mb N, --cache-gc\n"
    "                         deprecated aliases for the --cache settings "
    "above\n";

/// Artifact-store options accumulated while parsing.
struct CacheCliOptions {
  std::string dir;
  double budget_mb = 0.0;
  double max_age_h = 0.0;
  bool gc = false;
};

/// Applies one `--cache` setting (`name`/`value` as in "dir=DIR", or a
/// bare token like "gc" with an empty value).  Both the new `--cache SPEC`
/// syntax and the deprecated per-setting flags funnel through here — one
/// code path, so the two surfaces can never drift.  Returns false for an
/// unknown setting name; exits with code 2 on a malformed value.
inline bool apply_cache_setting(
    const std::string& flag, const std::string& name, const std::string& value,
    std::vector<std::pair<std::string, std::string>>& overrides,
    CacheCliOptions& state) {
  const auto bare = [&] {
    if (!value.empty()) {
      std::cerr << flag << ": '" << name << "' does not take a value\n";
      std::exit(2);
    }
  };
  const auto numeric = [&] {
    return parse_numeric_flag(flag + " " + name, value);
  };
  if (name == "on" || name == "off") {
    bare();
    overrides.emplace_back("table_cache", name == "on" ? "true" : "false");
    return true;
  }
  if (name == "gc") {
    bare();
    state.gc = true;
    return true;
  }
  if (name == "dir") {
    if (value.empty()) {
      std::cerr << flag << ": 'dir' expects a directory\n";
      std::exit(2);
    }
    state.dir = value;
    overrides.emplace_back("table_cache_dir", value);
    return true;
  }
  if (name == "budget-mb") {
    state.budget_mb = numeric();
    overrides.emplace_back("cache_budget_mb", value);
    return true;
  }
  if (name == "max-age-h") {
    state.max_age_h = numeric();
    overrides.emplace_back("cache_max_age_h", value);
    return true;
  }
  if (name == "mem-mb") {
    (void)numeric();
    overrides.emplace_back("cache_mem_mb", value);
    return true;
  }
  return false;
}

/// Consumes one shared artifact-store flag (and its value) from argv —
/// `--cache SPEC` or one of the deprecated per-setting aliases.  Returns
/// false when `argv[i]` is not a cache flag; exits with code 2 on a
/// malformed value.  Recognized settings land in `overrides` (scenario_io
/// keys, so they reach run_episode through the normal config path) and in
/// `state` (for the startup GC).
inline bool parse_cache_flag(
    int argc, char** argv, int& i,
    std::vector<std::pair<std::string, std::string>>& overrides,
    CacheCliOptions& state) {
  const std::string arg = argv[i];
  const auto next_value = [&]() -> std::string {
    if (i + 1 >= argc) {
      std::cerr << "missing value for " << arg << "\n";
      std::exit(2);
    }
    return argv[++i];
  };

  if (arg == "--cache") {
    for (const std::string& item : split(next_value(), ',')) {
      if (item.empty()) continue;
      const auto eq = item.find('=');
      const std::string name =
          eq == std::string::npos ? item : item.substr(0, eq);
      const std::string value =
          eq == std::string::npos ? "" : item.substr(eq + 1);
      if (!apply_cache_setting(arg, name, value, overrides, state)) {
        std::cerr << "--cache: unknown setting '" << name
                  << "' (expected on, off, dir=, mem-mb=, budget-mb=, "
                     "max-age-h=, gc)\n";
        std::exit(2);
      }
    }
    return true;
  }
  if (arg == "--table-cache") {
    const std::string value = next_value();
    if (value != "on" && value != "off") {
      std::cerr << "--table-cache expects on|off\n";
      std::exit(2);
    }
    return apply_cache_setting(arg, value, "", overrides, state);
  }
  if (arg == "--table-cache-dir")
    return apply_cache_setting(arg, "dir", next_value(), overrides, state);
  if (arg == "--cache-budget-mb")
    return apply_cache_setting(arg, "budget-mb", next_value(), overrides,
                               state);
  if (arg == "--cache-max-age-h")
    return apply_cache_setting(arg, "max-age-h", next_value(), overrides,
                               state);
  if (arg == "--cache-mem-mb")
    return apply_cache_setting(arg, "mem-mb", next_value(), overrides, state);
  if (arg == "--cache-gc")
    return apply_cache_setting(arg, "gc", "", overrides, state);
  return false;
}

/// Startup GC requested via --cache-gc: one LRU sweep over the artifact
/// dir with the configured caps, reported to stderr.
inline void run_requested_gc(const CacheCliOptions& state) {
  if (!state.gc) return;
  if (state.dir.empty()) {
    std::cerr << "--cache-gc requires --table-cache-dir\n";
    std::exit(2);
  }
  const ArtifactGcResult r = artifact_store_gc(
      state.dir,
      state.budget_mb > 0.0
          ? static_cast<std::uint64_t>(state.budget_mb * 1024.0 * 1024.0)
          : 0,
      state.max_age_h > 0.0 ? state.max_age_h * 3600.0 : 0.0);
  std::cerr << "artifact gc: scanned " << r.scanned << " files, removed "
            << r.removed << ", " << r.bytes_before << " -> " << r.bytes_after
            << " bytes\n";
}

/// The one greppable per-kind stats line format (CI assertions sed these
/// exact words) — single body, so the in-process and aggregated-farm
/// reports below cannot drift apart.
inline void print_artifact_store_stats_row(std::ostream& out,
                                           const std::string& kind,
                                           const ArtifactStoreStats& s) {
  out << "artifact store [" << kind << "]: " << s.hits << " hits, "
      << s.misses << " misses, " << s.builds << " builds, " << s.waits
      << " waits, " << s.lock_waits << " lock waits, " << s.evictions
      << " evictions, " << s.bytes << " bytes, " << s.disk_loads
      << " disk loads, " << s.disk_stores << " disk stores, "
      << s.disk_failures << " disk failures\n";
}

/// One greppable stats line per artifact kind for the process-wide stores,
/// with `extra` rows (e.g. worker-process stats summed by the --workers
/// parent) merged in by kind.  Every kind reports — also the ones this run
/// never touched — so CI and operators always see the full picture.
inline void print_artifact_store_stats(
    std::ostream& out, const std::vector<ArtifactKindStats>& extra = {}) {
  // Touching the global accessors guarantees each kind is registered (in
  // this order on a fresh process) before the snapshot.
  (void)DeadlineTableCache::global();
  (void)RolloutTableStore::global();
  (void)nn::cem_weights_store();
  std::map<std::string, ArtifactStoreStats> merged;
  for (const auto& row : ArtifactStoreRegistry::global().snapshot())
    merged[row.kind] = row.stats;
  for (const auto& row : extra) {
    ArtifactStoreStats& s = merged[row.kind];
    const ArtifactStoreStats& a = row.stats;
    s.hits += a.hits;
    s.fast_hits += a.fast_hits;
    s.misses += a.misses;
    s.builds += a.builds;
    s.waits += a.waits;
    s.lock_waits += a.lock_waits;
    s.evictions += a.evictions;
    s.bytes += a.bytes;
    s.disk_loads += a.disk_loads;
    s.disk_stores += a.disk_stores;
    s.disk_failures += a.disk_failures;
  }
  // std::map: sorted by kind, matching the registry snapshot's order.
  for (const auto& [kind, stats] : merged)
    print_artifact_store_stats_row(out, kind, stats);
}

/// One greppable utilization line for the global thread pool, matching the
/// artifact-store stats format (`--stats` in the sweep/fleet CLIs).
/// `window_s` is the wall time the run took; busy % is task time over
/// worker capacity in that window.
inline void print_thread_pool_stats(std::ostream& out, double window_s) {
  const ThreadPool& pool = ThreadPool::global();
  const ThreadPoolStats s = pool.stats();
  const double busy_pct = 100.0 * s.busy_fraction(window_s, pool.size());
  out << "thread pool: " << pool.size() << " workers, " << s.submitted
      << " tasks, " << s.steals << " steals, " << s.inline_runs
      << " inline, " << s.max_queue_depth << " max depth, "
      << static_cast<std::uint64_t>(busy_pct + 0.5) << "% busy\n";
}

}  // namespace seo::cli
