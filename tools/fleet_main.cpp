// `fleet` — the edge-cluster fleet-experiment grid runner.
//
//   fleet --list
//   fleet --scenario fleet_cluster --rounds 3 \
//         --axis cluster.servers=2,4 \
//         --axis cluster.dispatch=round_robin,least_loaded,earliest_slack \
//         --axis cluster.batch_window_ms=0,4 \
//         --threads 0 --format csv --output fleet.csv
//
// Every grid point = library scenario + axis overrides (the same
// scenario_io keys the sweep tool uses, including the fleet.* / cluster.*
// family), run through run_fleet_experiment.  Episode fan-out inside each
// point uses the thread pool; grid points themselves run serially, so the
// report is byte-identical for every --threads value (locked by
// tests/test_fleet.cpp and the CI smoke step).
#include <chrono>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "cli_common.hpp"
#include "safety/table_cache.hpp"
#include "core/fingerprint.hpp"
#include "sim/fleet_experiment.hpp"
#include "sim/scenario_io.hpp"
#include "sim/simulation.hpp"
#include "sim/sweep.hpp"
#include "sim/sweep_report.hpp"
#include "sim/trace.hpp"
#include "util/expect.hpp"

namespace {

using namespace seo;
using seo::cli::split;

int usage(int code) {
  std::ostream& out = code == 0 ? std::cout : std::cerr;
  out << "usage: fleet [options]\n"
         "  --list                 print the scenario library and exit\n"
         "  --scenario NAME        library base (default: fleet_cluster)\n"
         "  --axis key=v1,v2,...   add a grid axis over a scenario_io key\n"
         "                         (repeatable; cartesian by default)\n"
         "  --paired               zip the axes instead of crossing them\n"
         "  --set key=value        base override applied to every point "
         "(repeatable)\n"
         "  --rounds N             fleet rounds per point (default 1)\n"
         "  --seed N               base seed (default 1000)\n"
         "  --threads N            episode parallelism inside each point\n"
         "                         (1 serial, 0 all cores; default 0)\n"
         "  --stats                print a thread-pool utilization line to "
         "stderr\n"
      << seo::cli::kCacheUsage
      << "  --format csv|json      grid report format (default csv)\n"
         "  --output PATH          write the grid report to PATH "
         "(default stdout)\n"
         "  --trace-out FILE|-     stream every fan-out episode as a binary\n"
         "                         seo-trace ('-' = stdout and then requires\n"
         "                         --output so the report never interleaves)\n"
         "  --vehicles-output PATH also write per-vehicle summaries (one\n"
         "                         '# label' section per grid point)\n"
         "  --smoke                CI preset: fleet_cluster x servers{1,2} x\n"
         "                         dispatch{rr,ls} x window{0,4} on a short "
         "route\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  // Reuse the sweep engine's grid machinery: scenarios + axes +
  // base_overrides expand and resolve identically; the per-point experiment
  // is the fleet driver instead of run_experiment.
  SweepConfig grid;
  grid.scenarios = {"fleet_cluster"};
  int rounds = 1;
  std::uint64_t base_seed = 1000;
  int threads = 0;
  std::string format = "csv";
  std::string output;
  std::string vehicles_output;
  std::string trace_out;
  seo::cli::CacheCliOptions cache;

  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--smoke") smoke = true;
  // The smoke preset (fleet_experiment.hpp) is the same short-horizon
  // workload the test suite's golden fingerprints pin.
  if (smoke) grid = fleet_smoke_sweep();
  bool user_axes = false;  // the first user --axis replaces preset axes
  bool show_pool_stats = false;

  const auto next_arg = [&](int& i) -> std::string {
    if (i + 1 >= argc) {
      std::cerr << "missing value for " << argv[i] << "\n";
      std::exit(usage(2));
    }
    return argv[++i];
  };
  const auto next_int = [&](int& i) -> long long {
    const std::string flag = argv[i];
    const std::string text = next_arg(i);
    try {
      std::size_t consumed = 0;
      const long long v = std::stoll(text, &consumed);
      if (consumed == text.size()) return v;
    } catch (const std::exception&) {
    }
    std::cerr << flag << " expects an integer, got '" << text << "'\n";
    std::exit(usage(2));
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return usage(0);
    if (arg == "--list") {
      for (const auto& entry : scenario_library())
        std::cout << entry.name << "\n    " << entry.summary << "\n";
      return 0;
    }
    if (arg == "--scenario") {
      grid.scenarios = {next_arg(i)};
    } else if (arg == "--axis") {
      const std::string spec = next_arg(i);
      const auto eq = spec.find('=');
      if (eq == std::string::npos) {
        std::cerr << "--axis expects key=v1,v2,...\n";
        return usage(2);
      }
      SweepAxis axis;
      axis.key = spec.substr(0, eq);
      axis.values = split(spec.substr(eq + 1), ',');
      if (smoke && !user_axes) grid.axes.clear();  // user grid wins
      user_axes = true;
      grid.axes.push_back(std::move(axis));
    } else if (arg == "--paired") {
      grid.grid = GridMode::kPaired;
    } else if (arg == "--set") {
      const std::string spec = next_arg(i);
      const auto eq = spec.find('=');
      if (eq == std::string::npos) {
        std::cerr << "--set expects key=value\n";
        return usage(2);
      }
      grid.base_overrides.emplace_back(spec.substr(0, eq),
                                       spec.substr(eq + 1));
    } else if (arg == "--rounds") {
      rounds = static_cast<int>(next_int(i));
    } else if (arg == "--seed") {
      const long long seed = next_int(i);
      if (seed < 0) {
        std::cerr << "--seed must be non-negative\n";
        return usage(2);
      }
      base_seed = static_cast<std::uint64_t>(seed);
    } else if (arg == "--threads") {
      threads = static_cast<int>(next_int(i));
    } else if (arg == "--stats") {
      show_pool_stats = true;
    } else if (seo::cli::parse_cache_flag(argc, argv, i, grid.base_overrides,
                                          cache)) {
      // Shared artifact-store flags (cli_common.hpp).
    } else if (arg == "--format") {
      format = next_arg(i);
    } else if (arg == "--output") {
      output = next_arg(i);
    } else if (arg == "--vehicles-output") {
      vehicles_output = next_arg(i);
    } else if (arg == "--trace-out") {
      trace_out = next_arg(i);
    } else if (arg == "--smoke") {
      // Handled by the pre-scan above.
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return usage(2);
    }
  }

  // See sweep_main: '-' sends the binary stream to stdout, so the report
  // must be routed to a file.
  if (trace_out == "-" && output.empty()) {
    std::cerr << "--trace-out - writes the binary stream to stdout; route "
                 "the report elsewhere with --output PATH\n";
    return usage(2);
  }
  std::ofstream trace_file;
  std::optional<OrderedTraceSink> trace_sink;
  if (!trace_out.empty()) {
    std::ostream* stream = &std::cout;
    if (trace_out != "-") {
      trace_file.open(trace_out, std::ios::binary | std::ios::trunc);
      if (!trace_file) {
        std::cerr << "cannot open " << trace_out << " for writing\n";
        return 1;
      }
      stream = &trace_file;
    }
    trace_sink.emplace(*stream);
  }

  try {
    if (format != "csv" && format != "json")
      throw ContractViolation("unknown fleet report format: " + format +
                              " (csv|json)");
    seo::cli::run_requested_gc(cache);
    const std::vector<SweepPoint> points = expand_grid(grid);
    if (trace_sink) {
      // Header prepass: mix every point's table digest in grid order —
      // the same run identity a traced sweep stamps.
      FingerprintHasher hasher;
      for (const SweepPoint& point : points)
        hasher.mix(scenario_table_digest(resolve_point(grid, point)));
      trace_sink->set_run_digest(hasher.digest());
    }
    const auto run_start = std::chrono::steady_clock::now();

    std::ostringstream report;
    std::ostringstream vehicles_report;
    const auto metric_names = fleet_metric_names();
    if (format == "csv") {
      report << "scenario";
      for (const auto& axis : grid.axes) report << "," << axis.key;
      for (const auto& name : metric_names) report << "," << name;
      report << "\n";
    } else {
      report << "{\n  \"fleet\": {\n    \"rounds\": " << rounds
             << ",\n    \"base_seed\": " << base_seed
             << ",\n    \"points\": " << points.size() << "\n  },\n"
             << "  \"rows\": {";
    }

    std::uint64_t trace_block_base = 0;
    for (const SweepPoint& point : points) {
      FleetExperimentConfig config;
      config.scenario = resolve_point(grid, point);
      config.rounds = rounds;
      config.base_seed = base_seed;
      config.threads = threads;
      if (trace_sink) {
        config.trace_sink = &*trace_sink;
        config.trace_block_base = trace_block_base;
        config.trace_point_index = static_cast<std::uint32_t>(point.index);
        config.trace_label = point.label();
        // One block per episode slot, so the next point's base skips this
        // point's rounds x vehicles slots.
        trace_block_base += static_cast<std::uint64_t>(rounds) *
                            static_cast<std::uint64_t>(
                                config.scenario.fleet.vehicles);
      }
      const FleetResult result = run_fleet_experiment(config);
      const std::vector<double> values = fleet_metrics(result);

      if (format == "csv") {
        report << point.scenario;
        for (const auto& [key, value] : point.assignment) {
          (void)key;
          report << "," << value;
        }
        for (const double v : values) report << "," << report_fmt(v);
        report << "\n";
      } else {
        report << (point.index == 0 ? "\n" : ",\n");
        report << "    \"" << report_json_escape(point.label()) << "\": {\n";
        for (std::size_t m = 0; m < metric_names.size(); ++m) {
          report << "      \"" << metric_names[m]
                 << "\": " << report_fmt(values[m])
                 << (m + 1 < metric_names.size() ? "," : "") << "\n";
        }
        report << "    }";
      }
      if (!vehicles_output.empty()) {
        vehicles_report << "# " << point.label() << "\n"
                        << fleet_vehicle_csv(result);
      }
    }
    if (format == "json") report << "\n  }\n}\n";
    if (trace_sink) {
      trace_sink->finish();
      std::cerr << "streamed " << trace_sink->episodes_written()
                << " episode traces to "
                << (trace_out == "-" ? "stdout" : trace_out) << "\n";
    }

    seo::cli::print_artifact_store_stats(std::cerr);
    if (show_pool_stats) {
      const double run_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        run_start)
              .count();
      seo::cli::print_thread_pool_stats(std::cerr, run_s);
    }

    if (output.empty()) {
      std::cout << report.str();
    } else {
      std::ofstream out(output);
      if (!out) {
        std::cerr << "cannot open " << output << " for writing\n";
        return 1;
      }
      out << report.str();
      std::cerr << "wrote " << points.size() << " grid points to " << output
                << "\n";
    }
    if (!vehicles_output.empty()) {
      std::ofstream out(vehicles_output);
      if (!out) {
        std::cerr << "cannot open " << vehicles_output << " for writing\n";
        return 1;
      }
      out << vehicles_report.str();
      std::cerr << "wrote per-vehicle summaries to " << vehicles_output
                << "\n";
    }
  } catch (const seo::ContractViolation& e) {
    std::cerr << "fleet configuration error: " << e.what() << "\n";
    return 2;
  }
  return 0;
}
