// seo-lint — the determinism static-analysis gate (src/lint).
//
// Walks src/ tools/ tests/ bench/ examples/ under --root (default: the current
// directory), lexes every C++ file and applies the determinism rule table.
// Findings print as `file:line: rule: message` (or a JSON array with
// --json); the exit status gates CI: 0 clean, 1 findings, 2 usage or I/O
// error.  Explicit paths (files or directories) replace the default walk —
// that is how the fixture corpus under tests/lint_fixtures exercises the
// rules without failing the tree gate (the default walk skips any path
// containing "lint_fixtures").
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/rules.hpp"

namespace fs = std::filesystem;

namespace {

constexpr const char* kUsage =
    "usage: seo-lint [options] [paths...]\n"
    "\n"
    "Static-analysis gate for the repo's determinism contract: byte-\n"
    "identical sweep/fleet/trace/artifact output at any thread count, on\n"
    "any host, under any locale.\n"
    "\n"
    "With no paths, walks src/ tools/ tests/ bench/ examples/ under --root,\n"
    "skipping the lint_fixtures corpus.  Paths may be files or\n"
    "directories and are linted relative to --root when inside it.\n"
    "\n"
    "options:\n"
    "  --root DIR     repo root to walk and relativize against (default .)\n"
    "  --json         findings as a JSON array on stdout\n"
    "  --list-rules   print the rule catalogue and exit\n"
    "  -h, --help     this text\n"
    "\n"
    "suppression:\n"
    "  // seo-lint: allow(rule) -- justification\n"
    "on the offending line, or on its own line directly above.  The\n"
    "justification is mandatory; a malformed directive is itself a\n"
    "finding (bad-suppression) and can never be suppressed.\n"
    "\n"
    "exit status: 0 clean, 1 findings, 2 usage or I/O error\n";

bool has_cpp_extension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc" ||
         ext == ".hh" || ext == ".cxx";
}

/// Repo-relative forward-slash path when `path` is under `root`, else the
/// path as given — the rule allowlists and scopes match on this string.
std::string lint_path(const fs::path& path, const fs::path& root) {
  std::error_code ec;
  const fs::path rel = fs::relative(path, root, ec);
  const fs::path chosen =
      (!ec && !rel.empty() && rel.native()[0] != '.') ? rel : path;
  return chosen.generic_string();
}

void collect_dir(const fs::path& dir, const fs::path& root, bool skip_fixtures,
                 std::vector<fs::path>& out) {
  std::error_code ec;
  for (fs::recursive_directory_iterator it(dir, ec), end; it != end;
       it.increment(ec)) {
    if (ec) break;
    if (!it->is_regular_file(ec)) continue;
    const fs::path& p = it->path();
    if (!has_cpp_extension(p)) continue;
    if (skip_fixtures &&
        p.generic_string().find("lint_fixtures") != std::string::npos)
      continue;
    out.push_back(p);
  }
  (void)root;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  bool json = false;
  std::vector<std::string> inputs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") {
      std::cout << kUsage;
      return 0;
    }
    if (arg == "--json") {
      json = true;
      continue;
    }
    if (arg == "--list-rules") {
      for (const auto& rule : seo::lint::rule_catalogue())
        std::cout << rule.name << ": " << rule.summary << "\n";
      return 0;
    }
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::cerr << "seo-lint: --root expects a directory\n";
        return 2;
      }
      root = argv[++i];
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::cerr << "seo-lint: unknown option '" << arg << "'\n" << kUsage;
      return 2;
    }
    inputs.push_back(arg);
  }

  std::vector<fs::path> files;
  if (inputs.empty()) {
    // The canonical tree: every directory the determinism contract covers.
    for (const char* dir : {"src", "tools", "tests", "bench", "examples"}) {
      const fs::path sub = root / dir;
      std::error_code ec;
      if (fs::is_directory(sub, ec))
        collect_dir(sub, root, /*skip_fixtures=*/true, files);
    }
    if (files.empty()) {
      std::cerr << "seo-lint: nothing to lint under " << root
                << " (no src/ tools/ tests/ bench/ examples/)\n";
      return 2;
    }
  } else {
    for (const std::string& input : inputs) {
      const fs::path p = input;
      std::error_code ec;
      if (fs::is_directory(p, ec)) {
        collect_dir(p, root, /*skip_fixtures=*/false, files);
      } else if (fs::is_regular_file(p, ec)) {
        files.push_back(p);
      } else {
        std::cerr << "seo-lint: no such file or directory: " << input << "\n";
        return 2;
      }
    }
  }

  // Deterministic report order regardless of directory iteration order.
  std::vector<std::pair<std::string, fs::path>> work;
  work.reserve(files.size());
  for (const fs::path& p : files) work.emplace_back(lint_path(p, root), p);
  std::sort(work.begin(), work.end());
  work.erase(std::unique(work.begin(), work.end(),
                         [](const auto& a, const auto& b) {
                           return a.first == b.first;
                         }),
             work.end());

  std::vector<seo::lint::Finding> findings;
  std::size_t files_with_findings = 0;
  for (const auto& [name, path] : work) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::cerr << "seo-lint: cannot read " << path << "\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string source = buffer.str();
    std::vector<seo::lint::Finding> file_findings =
        seo::lint::lint_file(name, source);
    if (!file_findings.empty()) ++files_with_findings;
    for (auto& f : file_findings) findings.push_back(std::move(f));
  }

  if (json) {
    std::cout << "[";
    for (std::size_t i = 0; i < findings.size(); ++i) {
      const auto& f = findings[i];
      std::cout << (i == 0 ? "\n" : ",\n")
                << "  {\"file\": \"" << json_escape(f.file)
                << "\", \"line\": " << f.line << ", \"rule\": \""
                << json_escape(f.rule) << "\", \"message\": \""
                << json_escape(f.message) << "\"}";
    }
    std::cout << (findings.empty() ? "]\n" : "\n]\n");
  } else {
    for (const auto& f : findings)
      std::cout << f.file << ":" << f.line << ": " << f.rule << ": "
                << f.message << "\n";
  }
  std::cerr << "seo-lint: " << findings.size() << " finding"
            << (findings.size() == 1 ? "" : "s") << " in "
            << files_with_findings << " of " << work.size()
            << " files\n";
  return findings.empty() ? 0 : 1;
}
