#!/usr/bin/env python3
"""Convert google-benchmark JSON output into the repo's BENCH_hotpaths.json.

Usage:
    bench/micro_hotpaths --benchmark_format=json | tools/bench_to_json.py
    tools/bench_to_json.py raw.json [-o BENCH_hotpaths.json]

Keeps one entry per benchmark (name -> real/cpu time) plus enough host
context to interpret the numbers across machines, so successive commits of
BENCH_hotpaths.json form a perf trajectory for the hot paths.
"""
import argparse
import json
import sys


def convert(raw: dict) -> dict:
    context = raw.get("context", {})
    out = {
        "context": {
            "date": context.get("date"),
            "host_name": context.get("host_name"),
            "num_cpus": context.get("num_cpus"),
            "mhz_per_cpu": context.get("mhz_per_cpu"),
            "cpu_scaling_enabled": context.get("cpu_scaling_enabled"),
            "library_build_type": context.get("library_build_type"),
        },
        "benchmarks": {},
    }
    for bench in raw.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        out["benchmarks"][bench["name"]] = {
            "real_time": bench.get("real_time"),
            "cpu_time": bench.get("cpu_time"),
            "time_unit": bench.get("time_unit"),
            "iterations": bench.get("iterations"),
        }
    return out


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("input", nargs="?", default="-",
                        help="google-benchmark JSON file (default: stdin)")
    parser.add_argument("-o", "--output", default="BENCH_hotpaths.json",
                        help="output path (default: BENCH_hotpaths.json)")
    args = parser.parse_args()

    if args.input == "-":
        raw = json.load(sys.stdin)
    else:
        with open(args.input) as f:
            raw = json.load(f)

    result = convert(raw)
    with open(args.output, "w") as f:
        json.dump(result, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {len(result['benchmarks'])} benchmarks to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
