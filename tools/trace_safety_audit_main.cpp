// `trace-safety-audit` — per-episode safety-filter audit from a seo-trace
// stream.
//
//   sweep --smoke --trace-out - --output grid.csv \
//     | trace-safety-audit --engaged-only
//
// For each episode: the outcome flags, the filter engagement picture
// (engaged-tick rate, distinct interventions = rising edges of
// filter_engaged), and the barrier low-water mark with the time it was
// hit — the per-tick evidence behind the sweep report's min_h column.
#include <cstdint>
#include <iostream>
#include <limits>
#include <string>

#include "trace_stage.hpp"
#include "util/numeric.hpp"

namespace {

using namespace seo;

int usage(int code) {
  std::ostream& out = code == 0 ? std::cout : std::cerr;
  out << "usage: trace-safety-audit [FILE|-] [options]\n"
      << seo::cli::kTraceStageUsage
      << "  --engaged-only         only report episodes where the filter "
         "engaged\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  seo::cli::TraceStage stage;
  bool engaged_only = false;

  const auto next_arg = [&](int& i) -> std::string {
    if (i + 1 >= argc) {
      std::cerr << "missing value for " << argv[i] << "\n";
      std::exit(usage(2));
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return usage(0);
    if (arg == "--engaged-only") {
      engaged_only = true;
    } else if (stage.parse_flag(arg, i, next_arg)) {
      // Shared stage flags (trace_stage.hpp).
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return usage(2);
    }
  }
  if (!stage.validate("trace-safety-audit")) return usage(2);

  try {
    TraceStreamReader reader(stage.open_input("trace-safety-audit"),
                             stage.tee());
    std::ostream& report = stage.open_report("trace-safety-audit");
    report << "episode,point_index,vehicle,seed,completed,collided,off_road,"
              "timed_out,samples,engaged_ticks,engagement_rate,interventions,"
              "min_h,min_h_t\n";

    TraceEpisodeInfo episode;
    std::uint64_t samples = 0;
    std::uint64_t engaged_ticks = 0;
    std::uint64_t interventions = 0;  // rising edges of filter_engaged
    bool prev_engaged = false;
    double min_h = std::numeric_limits<double>::infinity();
    double min_h_t = 0.0;
    std::uint64_t reported = 0;
    TraceRecord record;
    while (reader.next(record)) {
      switch (record.type) {
        case TraceRecord::Type::kEpisodeBegin:
          episode = record.episode;
          samples = engaged_ticks = interventions = 0;
          prev_engaged = false;
          min_h = std::numeric_limits<double>::infinity();
          min_h_t = 0.0;
          break;
        case TraceRecord::Type::kSample:
          ++samples;
          if (record.sample.filter_engaged) {
            ++engaged_ticks;
            if (!prev_engaged) ++interventions;
          }
          prev_engaged = record.sample.filter_engaged;
          if (record.sample.barrier_h < min_h) {
            min_h = record.sample.barrier_h;
            min_h_t = record.sample.t;
          }
          break;
        case TraceRecord::Type::kEpisodeEnd: {
          if (engaged_only && record.summary.filter_engagements == 0) break;
          const long long vehicle =
              episode.vehicle == kTraceNoVehicle
                  ? -1
                  : static_cast<long long>(episode.vehicle);
          report << reader.episodes_read() - 1 << "," << episode.point_index
                 << "," << vehicle << "," << episode.seed << ","
                 << (record.summary.completed ? 1 : 0) << ","
                 << (record.summary.collided ? 1 : 0) << ","
                 << (record.summary.off_road ? 1 : 0) << ","
                 << (record.summary.timed_out ? 1 : 0) << "," << samples
                 << "," << engaged_ticks << ","
                 << format_double(samples > 0
                                      ? static_cast<double>(engaged_ticks) /
                                            static_cast<double>(samples)
                                      : 0.0)
                 << "," << interventions << ","
                 << format_double(samples > 0 ? min_h : 0.0) << ","
                 << format_double(min_h_t) << "\n";
          ++reported;
          break;
        }
        case TraceRecord::Type::kOffload:
          break;
      }
    }
    std::cerr << "trace-safety-audit: " << reported << "/"
              << reader.episodes_total() << " episodes reported\n";
  } catch (const TraceStreamError& e) {
    return seo::cli::report_stream_error("trace-safety-audit", e);
  }
  return 0;
}
