// `trace-energy-report` — per-episode (or per-vehicle) energy accounting
// from a seo-trace stream.
//
//   fleet --smoke --trace-out - --output grid.csv \
//     | trace-energy-report --by-vehicle
//
// Episode energy comes from the episode-end summary (combined Lambda'
// model energy vs the always-offload baseline); uplink load (offload
// count, bytes, airtime) is accumulated from the offload records, probes
// excluded.  --by-vehicle folds episodes onto their fleet vehicle — rows
// for plain sweep streams (no vehicle identity) fold onto vehicle -1.
#include <cstdint>
#include <iostream>
#include <map>
#include <string>

#include "trace_stage.hpp"
#include "util/numeric.hpp"

namespace {

using namespace seo;

int usage(int code) {
  std::ostream& out = code == 0 ? std::cout : std::cerr;
  out << "usage: trace-energy-report [FILE|-] [options]\n"
      << seo::cli::kTraceStageUsage
      << "  --by-vehicle           aggregate per fleet vehicle instead of "
         "per episode\n";
  return code;
}

struct EnergyAccum {
  std::uint64_t episodes = 0;
  std::uint64_t offloads = 0;
  double bytes = 0.0;
  double airtime_s = 0.0;
  double actual_j = 0.0;
  double baseline_j = 0.0;
};

/// 1 - actual/baseline, the gain() convention of energy/report.hpp.
double gain(double actual_j, double baseline_j) {
  return baseline_j > 0.0 ? 1.0 - actual_j / baseline_j : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  seo::cli::TraceStage stage;
  bool by_vehicle = false;

  const auto next_arg = [&](int& i) -> std::string {
    if (i + 1 >= argc) {
      std::cerr << "missing value for " << argv[i] << "\n";
      std::exit(usage(2));
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return usage(0);
    if (arg == "--by-vehicle") {
      by_vehicle = true;
    } else if (stage.parse_flag(arg, i, next_arg)) {
      // Shared stage flags (trace_stage.hpp).
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return usage(2);
    }
  }
  if (!stage.validate("trace-energy-report")) return usage(2);

  try {
    TraceStreamReader reader(stage.open_input("trace-energy-report"),
                             stage.tee());
    std::ostream& report = stage.open_report("trace-energy-report");
    if (!by_vehicle)
      report << "episode,point_index,vehicle,seed,offloads,offload_bytes,"
                "offload_airtime_s,energy_actual_j,energy_baseline_j,"
                "energy_gain\n";

    // keyed by vehicle (kTraceNoVehicle folds to -1); std::map iterates in
    // vehicle order for the aggregate report.
    std::map<long long, EnergyAccum> per_vehicle;
    TraceEpisodeInfo episode;   // identity of the open episode
    EnergyAccum accum;          // uplink totals of the open episode
    TraceRecord record;
    while (reader.next(record)) {
      switch (record.type) {
        case TraceRecord::Type::kEpisodeBegin:
          episode = record.episode;
          accum = EnergyAccum{};
          break;
        case TraceRecord::Type::kOffload:
          if (record.offload.probe) break;  // load, not a frame
          ++accum.offloads;
          accum.bytes += record.offload.bytes;
          accum.airtime_s += record.offload.tx_time_s;
          break;
        case TraceRecord::Type::kEpisodeEnd: {
          accum.episodes = 1;
          accum.actual_j = record.summary.energy_actual_j;
          accum.baseline_j = record.summary.energy_baseline_j;
          const long long vehicle =
              episode.vehicle == kTraceNoVehicle
                  ? -1
                  : static_cast<long long>(episode.vehicle);
          if (by_vehicle) {
            EnergyAccum& v = per_vehicle[vehicle];
            ++v.episodes;
            v.offloads += accum.offloads;
            v.bytes += accum.bytes;
            v.airtime_s += accum.airtime_s;
            v.actual_j += accum.actual_j;
            v.baseline_j += accum.baseline_j;
          } else {
            // episodes_read() already counts the episode this end record
            // closes, so the 0-based ordinal is one less.
            report << reader.episodes_read() - 1 << "," << episode.point_index
                   << "," << vehicle << "," << episode.seed << ","
                   << accum.offloads << "," << format_double(accum.bytes)
                   << "," << format_double(accum.airtime_s) << ","
                   << format_double(accum.actual_j) << ","
                   << format_double(accum.baseline_j) << ","
                   << format_double(gain(accum.actual_j, accum.baseline_j))
                   << "\n";
          }
          break;
        }
        case TraceRecord::Type::kSample:
          break;
      }
    }
    if (by_vehicle) {
      report << "vehicle,episodes,offloads,offload_bytes,offload_airtime_s,"
                "energy_actual_j,energy_baseline_j,energy_gain\n";
      for (const auto& [vehicle, v] : per_vehicle) {
        report << vehicle << "," << v.episodes << "," << v.offloads << ","
               << format_double(v.bytes) << "," << format_double(v.airtime_s)
               << "," << format_double(v.actual_j) << ","
               << format_double(v.baseline_j) << ","
               << format_double(gain(v.actual_j, v.baseline_j)) << "\n";
      }
    }
    std::cerr << "trace-energy-report: " << reader.episodes_total()
              << " episodes\n";
  } catch (const TraceStreamError& e) {
    return seo::cli::report_stream_error("trace-energy-report", e);
  }
  return 0;
}
