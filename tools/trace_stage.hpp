// Shared scaffolding for the trace-* stage tools.  Every stage reads one
// binary seo-trace stream (a file, or '-' = stdin), writes its report to
// stdout or --output, and with --passthrough copies the validated input
// bytes to stdout — so stages chain like classic unix filters:
//
//   sweep --smoke --trace-out - --output grid.csv \
//     | trace-safety-audit --passthrough -o audit.csv \
//     | trace-energy-report --passthrough -o energy.csv \
//     | trace-export -o trace.csv
//
// Passthrough forwards bytes only after the reader validated them, so a
// damaged stream kills the whole pipeline instead of propagating silently.
#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "sim/trace.hpp"

namespace seo::cli {

/// Usage text for the flags every stage tool shares.
inline constexpr const char* kTraceStageUsage =
    "  FILE|-                 input seo-trace stream (default '-' = stdin)\n"
    "  -o, --output PATH      write the report to PATH (default stdout)\n"
    "  --passthrough          copy the validated input stream to stdout\n"
    "                         (requires -o, so the report and the binary\n"
    "                         stream never share stdout)\n";

/// Common state of one stage tool invocation: the shared flags plus the
/// opened input / report streams.
class TraceStage {
 public:
  /// Consumes `arg` if it is a shared flag or the positional input operand.
  /// `next_arg` is the tool's own missing-value-checked argv fetcher.
  template <typename NextArg>
  bool parse_flag(const std::string& arg, int& i, NextArg&& next_arg) {
    if (arg == "-o" || arg == "--output") {
      output_ = next_arg(i);
      return true;
    }
    if (arg == "--passthrough") {
      passthrough_ = true;
      return true;
    }
    // Positional input: '-' or anything that is not a flag; a second
    // operand falls through to the tool's unknown-argument error.
    if ((arg == "-" || arg.rfind("-", 0) != 0) && !input_seen_) {
      input_ = arg;
      input_seen_ = true;
      return true;
    }
    return false;
  }

  /// Flag-combination check; prints to stderr and returns false on misuse.
  bool validate(const char* tool) const {
    if (passthrough_ && output_.empty()) {
      std::cerr << tool
                << ": --passthrough forwards the binary stream on stdout; "
                   "route the report with -o PATH\n";
      return false;
    }
    return true;
  }

  /// Opens the input stream ('-' = stdin); exits 1 on open failure.
  std::istream& open_input(const char* tool) {
    if (input_ == "-") return std::cin;
    file_in_.open(input_, std::ios::binary);
    if (!file_in_) {
      std::cerr << tool << ": cannot open " << input_ << " for reading\n";
      std::exit(1);
    }
    return file_in_;
  }

  /// Opens the report stream (stdout or -o PATH); exits 1 on failure.
  /// Reports stream incrementally, so a stage holds O(1) state however
  /// long the input is.
  std::ostream& open_report(const char* tool) {
    if (output_.empty()) return std::cout;
    file_out_.open(output_);
    if (!file_out_) {
      std::cerr << tool << ": cannot open " << output_ << " for writing\n";
      std::exit(1);
    }
    return file_out_;
  }

  /// The reader tee: stdout in passthrough mode, else none.
  std::ostream* tee() { return passthrough_ ? &std::cout : nullptr; }

  const std::string& input() const { return input_; }

 private:
  std::string input_ = "-";
  std::string output_;
  bool passthrough_ = false;
  bool input_seen_ = false;
  std::ifstream file_in_;
  std::ofstream file_out_;
};

/// Human-readable name of a stream-rejection code (error messages, tests).
inline const char* trace_errc_name(TraceStreamErrc code) {
  switch (code) {
    case TraceStreamErrc::kBadMagic: return "bad-magic";
    case TraceStreamErrc::kVersionMismatch: return "version-mismatch";
    case TraceStreamErrc::kTruncated: return "truncated";
    case TraceStreamErrc::kBadChecksum: return "bad-checksum";
    case TraceStreamErrc::kBadRecord: return "bad-record";
  }
  return "unknown";
}

/// Standard stage-tool error epilogue: prints the rejection and returns
/// the exit code mains propagate.
inline int report_stream_error(const char* tool, const TraceStreamError& e) {
  std::cerr << tool << ": rejected stream (" << trace_errc_name(e.code())
            << "): " << e.what() << "\n";
  return 1;
}

}  // namespace seo::cli
