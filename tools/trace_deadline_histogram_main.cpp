// `trace-deadline-histogram` — interval deadline histogram from a
// seo-trace stream.
//
//   sweep --smoke --trace-out - --output grid.csv | trace-deadline-histogram
//
// Counts every optimization interval (samples flagged interval_started) by
// its effective deadline delta_max — the stream-side equivalent of the
// deadline_hist column family in the sweep report, but computable from a
// trace file long after the run.  Output: delta,count,share CSV.
#include <cstdint>
#include <iostream>
#include <map>
#include <string>

#include "trace_stage.hpp"
#include "util/numeric.hpp"

namespace {

using namespace seo;

int usage(int code) {
  std::ostream& out = code == 0 ? std::cout : std::cerr;
  out << "usage: trace-deadline-histogram [FILE|-] [options]\n"
      << seo::cli::kTraceStageUsage
      << "  --unconstrained        count unconstrained intervals too (as "
         "delta -1)\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  seo::cli::TraceStage stage;
  bool include_unconstrained = false;

  const auto next_arg = [&](int& i) -> std::string {
    if (i + 1 >= argc) {
      std::cerr << "missing value for " << argv[i] << "\n";
      std::exit(usage(2));
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return usage(0);
    if (arg == "--unconstrained") {
      include_unconstrained = true;
    } else if (stage.parse_flag(arg, i, next_arg)) {
      // Shared stage flags (trace_stage.hpp).
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return usage(2);
    }
  }
  if (!stage.validate("trace-deadline-histogram")) return usage(2);

  try {
    TraceStreamReader reader(stage.open_input("trace-deadline-histogram"),
                             stage.tee());
    // Keyed map, not a dense vector: delta_max is small but unbounded by
    // format, and -1 collects unconstrained intervals when requested.
    std::map<int, std::uint64_t> hist;
    std::uint64_t intervals = 0;
    TraceRecord record;
    while (reader.next(record)) {
      if (record.type != TraceRecord::Type::kSample) continue;
      if (!record.sample.interval_started) continue;
      if (record.sample.unconstrained && !include_unconstrained) continue;
      const int key = record.sample.unconstrained ? -1
                                                  : record.sample.delta_max;
      ++hist[key];
      ++intervals;
    }
    std::ostream& report =
        stage.open_report("trace-deadline-histogram");
    report << "delta,count,share\n";
    for (const auto& [delta, count] : hist) {
      report << delta << "," << count << ","
             << format_double(intervals > 0
                                  ? static_cast<double>(count) /
                                        static_cast<double>(intervals)
                                  : 0.0)
             << "\n";
    }
    std::cerr << "trace-deadline-histogram: " << intervals
              << " intervals across " << reader.episodes_total()
              << " episodes\n";
  } catch (const TraceStreamError& e) {
    return seo::cli::report_stream_error("trace-deadline-histogram", e);
  }
  return 0;
}
