// `trace-merge` — deterministically recombines shard trace files into the
// single stream an unsharded run would have written.
//
//   sweep --smoke --shard 0/2 --trace-out shard0.trace   # host A
//   sweep --smoke --shard 1/2 --trace-out shard1.trace   # host B
//   trace-merge shard0.trace shard1.trace -o full.trace
//
// Inputs must be shards of the same run (equal run_digest) with disjoint
// grid points, each sorted by grid-point index — exactly what
// `sweep --shard i/N --trace-out` produces.  The merge is a streaming
// k-way merge of validated whole-episode byte spans, so the output is
// byte-identical to the unsharded run's stream and pipes straight into
// the other stage tools (trace-export, trace-energy-report, ...).
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "sim/trace.hpp"
#include "util/expect.hpp"

namespace {

int usage(int code) {
  std::ostream& out = code == 0 ? std::cout : std::cerr;
  out << "usage: trace-merge [options] SHARD.trace [SHARD.trace ...]\n"
         "  -o, --output PATH      write the merged stream to PATH "
         "(default stdout)\n"
         "\n"
         "Merges seo-trace shard files (from `sweep --shard i/N "
         "--trace-out`) into\n"
         "one stream, byte-identical to the unsharded run: episodes are "
         "reordered\n"
         "by grid-point index and re-emitted verbatim.  Inputs must share "
         "one\n"
         "run_digest and cover disjoint grid points; anything else is "
         "rejected.\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  std::string output;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return usage(0);
    if (arg == "-o" || arg == "--output") {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        return usage(2);
      }
      output = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown argument: " << arg << "\n";
      return usage(2);
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) {
    std::cerr << "trace-merge needs at least one shard file\n";
    return usage(2);
  }

  std::vector<std::ifstream> files;
  files.reserve(inputs.size());
  std::vector<std::istream*> streams;
  streams.reserve(inputs.size());
  for (const std::string& path : inputs) {
    files.emplace_back(path, std::ios::binary);
    if (!files.back()) {
      std::cerr << "cannot open " << path << "\n";
      return 1;
    }
    streams.push_back(&files.back());
  }

  std::ofstream out_file;
  std::ostream* out = &std::cout;
  if (!output.empty()) {
    out_file.open(output, std::ios::binary | std::ios::trunc);
    if (!out_file) {
      std::cerr << "cannot open " << output << " for writing\n";
      return 1;
    }
    out = &out_file;
  }

  try {
    seo::merge_trace_streams(streams, *out);
  } catch (const seo::TraceStreamError& e) {
    std::cerr << "trace-merge: damaged input: " << e.what() << "\n";
    return 1;
  } catch (const seo::ContractViolation& e) {
    std::cerr << "trace-merge: " << e.what() << "\n";
    return 2;
  }
  if (!*out) {
    std::cerr << "trace-merge: write failed\n";
    return 1;
  }
  std::cerr << "merged " << inputs.size() << " shard streams"
            << (output.empty() ? "" : " into " + output) << "\n";
  return 0;
}
